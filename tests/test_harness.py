"""Tests for the replay harness, reporting and experiment runners."""

import numpy as np
import pytest

from repro.core.config import GlobalModelConfig, fast_profile
from repro.core.metrics import ErrorSummary
from repro.harness import (
    SweepConfig,
    accuracy_table,
    component_summaries,
    component_table,
    end_to_end_comparison,
    fleet_statistics,
    improvement,
    inference_cost,
    prr_analysis,
    render_comparison_table,
    render_simple_table,
    replay_instance,
    run_sweep,
)
from repro.workload import FleetConfig, FleetGenerator


@pytest.fixture(scope="module")
def tiny_sweep():
    return run_sweep(
        SweepConfig(
            seed=5,
            n_eval_instances=4,
            n_train_instances=4,
            duration_days=1.5,
            volume_scale=0.2,
            global_model=GlobalModelConfig(
                hidden_dim=24, n_conv_layers=2, epochs=8, max_queries_per_instance=150
            ),
        )
    )


class TestReporting:
    def test_improvement_sign(self):
        assert improvement(8.0, 10.0) == pytest.approx(0.2)
        assert improvement(12.0, 10.0) == pytest.approx(-0.2)
        assert improvement(1.0, 0.0) == 0.0

    def test_render_comparison_table(self):
        summary = {"Overall": ErrorSummary(n=10, mean=1.5, p50=1.0, p90=3.0)}
        text = render_comparison_table("T", "A", summary, "B", summary)
        assert "Overall" in text and "A MAE" in text and "B MAE" in text

    def test_render_simple_table(self):
        text = render_simple_table("title", ["x", "y"], [["a", 1.0], ["b", 2000.0]])
        assert "title" in text and "2000" in text

    def test_nan_rendered_as_dash(self):
        summary = {
            "Overall": ErrorSummary(n=0, mean=float("nan"), p50=float("nan"), p90=float("nan"))
        }
        text = render_comparison_table("T", "A", summary, "B", summary)
        assert "-" in text


class TestReplay:
    @pytest.fixture(scope="class")
    def replay(self):
        gen = FleetGenerator(FleetConfig(seed=9, volume_scale=0.25))
        trace = gen.generate_trace(gen.sample_instance(0), 1.5)
        return trace, replay_instance(trace, config=fast_profile())

    def test_arrays_aligned(self, replay):
        trace, result = replay
        n = len(trace)
        assert len(result) == n
        for attr in (
            "true",
            "arrival",
            "stage_pred",
            "autowlm_pred",
            "cache_pred",
            "local_pred",
            "local_std",
            "global_pred",
        ):
            assert getattr(result, attr).shape == (n,)

    def test_true_matches_trace(self, replay):
        trace, result = replay
        np.testing.assert_array_equal(result.true, [r.exec_time for r in trace])

    def test_first_query_is_never_cache_hit(self, replay):
        _, result = replay
        assert np.isnan(result.cache_pred[0])

    def test_cache_hits_match_stage_source(self, replay):
        """Whenever the cache had an answer, Stage must have used it."""
        _, result = replay
        hits = result.cache_hit_mask
        assert (result.stage_source[hits] == "cache").all()

    def test_stage_stats_recorded(self, replay):
        _, result = replay
        assert 0 <= result.stage_stats["cache_hit_rate"] <= 1
        assert result.stage_stats["n_local_retrains"] >= 0

    def test_no_global_means_nan_global_preds(self, replay):
        _, result = replay
        assert np.isnan(result.global_pred).all()

    def test_no_leakage_on_unique_trace(self):
        """On a trace with no repeats and models disabled (huge
        min_train_size), every Stage answer must be the default — i.e.
        nothing about a query's own exec-time is available at prediction
        time."""
        import dataclasses

        gen = FleetGenerator(FleetConfig(seed=12, volume_scale=0.2))
        # pure-adhoc instances never repeat; find one
        trace = None
        for i in range(30):
            inst = gen.sample_instance(i)
            if inst.kind_weights.get("adhoc", 0) == 1.0:
                trace = gen.generate_trace(inst, 1.0)
                break
        assert trace is not None
        cfg = fast_profile()
        cfg = dataclasses.replace(
            cfg,
            local=dataclasses.replace(cfg.local, min_train_size=10**9),
        )
        result = replay_instance(trace, config=cfg)
        assert (result.stage_source == "default").all()


class TestSweep:
    def test_sweep_shapes(self, tiny_sweep):
        assert len(tiny_sweep.replays) == 4
        assert tiny_sweep.global_model is not None
        pooled_true = tiny_sweep.pooled("true")
        assert pooled_true.shape[0] == sum(len(r) for r in tiny_sweep.replays)

    def test_global_predictions_present(self, tiny_sweep):
        assert np.isfinite(tiny_sweep.pooled("global_pred")).all()

    def test_accuracy_tables_render(self, tiny_sweep):
        t1 = accuracy_table(tiny_sweep, "absolute")
        t2 = accuracy_table(tiny_sweep, "q")
        assert "Table 1" in t1 and "Stage" in t1
        assert "Table 2" in t2

    def test_component_tables_render(self, tiny_sweep):
        for table in ("table3", "table4", "table5", "table6"):
            text = component_table(tiny_sweep, table)
            assert "Overall" in text

    def test_component_summaries_consistent(self, tiny_sweep):
        left, right, n = component_summaries(tiny_sweep, "table3")
        assert left["Overall"].n == right["Overall"].n == n

    def test_end_to_end_structure(self, tiny_sweep):
        e2e = end_to_end_comparison(tiny_sweep)
        assert set(e2e["aggregates"]) == {"stage", "autowlm", "optimal"}
        assert len(e2e["per_instance"]) == 4
        # per-instance list is sorted by the optimal improvement
        vals = [d["optimal_improvement"] for d in e2e["per_instance"]]
        assert vals == sorted(vals)

    def test_optimal_beats_stage_on_average(self, tiny_sweep):
        e2e = end_to_end_comparison(tiny_sweep)
        assert (
            e2e["improvements"]["optimal"]["mean"]
            >= e2e["improvements"]["stage"]["mean"] - 0.05
        )

    def test_prr_analysis(self, tiny_sweep):
        prr = prr_analysis(tiny_sweep)
        assert isinstance(prr["scores"], list)
        if prr["scores"]:
            assert -1.0 <= prr["median"] <= 1.0

    def test_inference_cost_orderings(self, tiny_sweep):
        cost = inference_cost(tiny_sweep, n_probe=40)
        assert "cache" in cost and "stage" in cost and "autowlm" in cost
        # the cache must be the cheapest component by a wide margin
        others = [
            v["latency_s"] for k, v in cost.items() if k not in ("cache", "stage")
        ]
        assert cost["cache"]["latency_s"] < min(others)


class TestFleetStatistics:
    def test_statistics_fields(self):
        stats = fleet_statistics(n_instances=10, duration_days=1.5, volume_scale=0.15)
        assert 0 <= stats["clusters_over_50pct_unique"] <= 1
        assert 0 <= stats["fleet_repeat_fraction"] <= 1
        assert stats["exec_times"].shape[0] == sum(stats["bucket_counts"].values())
        assert stats["latency_percentiles_ms"][99.9] >= stats["latency_percentiles_ms"][50]
