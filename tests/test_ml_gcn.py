"""Tests for the directed GCN over plan graphs."""

import numpy as np
import pytest

from repro.ml.gcn import DirectedGCN, GraphBatch, PlanGraph
from repro.ml.nn import huber_loss


def _chain_graph(n, n_features=4, seed=0, sys_dim=2):
    """A chain plan: node i+1 is the child of node i; root is node 0."""
    rng = np.random.default_rng(seed)
    feats = rng.normal(size=(n, n_features))
    if n > 1:
        edges = np.array([list(range(1, n)), list(range(n - 1))])
    else:
        edges = np.zeros((2, 0), dtype=int)
    return PlanGraph(
        node_features=feats,
        edges=edges,
        root=0,
        sys_features=rng.normal(size=sys_dim),
    )


def _random_tree(n, seed, n_features=4, sys_dim=2):
    rng = np.random.default_rng(seed)
    feats = np.abs(rng.normal(size=(n, n_features)))
    parents = [int(rng.integers(0, k)) for k in range(1, n)]
    edges = np.array([list(range(1, n)), parents]) if n > 1 else np.zeros((2, 0), dtype=int)
    return PlanGraph(
        node_features=feats,
        edges=edges,
        root=0,
        sys_features=np.abs(rng.normal(size=sys_dim)),
    )


class TestPlanGraph:
    def test_rejects_bad_edges(self):
        with pytest.raises(ValueError, match="edge index"):
            PlanGraph(
                node_features=np.zeros((2, 3)),
                edges=np.array([[5], [0]]),
                root=0,
                sys_features=np.zeros(1),
            )

    def test_rejects_bad_root(self):
        with pytest.raises(ValueError, match="root index"):
            PlanGraph(
                node_features=np.zeros((2, 3)),
                edges=np.zeros((2, 0)),
                root=9,
                sys_features=np.zeros(1),
            )


class TestGraphBatch:
    def test_empty_batch_raises(self):
        with pytest.raises(ValueError):
            GraphBatch([])

    def test_offsets_are_applied(self):
        g1 = _chain_graph(3, seed=1)
        g2 = _chain_graph(2, seed=2)
        batch = GraphBatch([g1, g2])
        assert batch.n_nodes == 5
        assert list(batch.roots) == [0, 3]
        assert batch.src.max() < 5

    def test_single_node_graphs(self):
        batch = GraphBatch([_chain_graph(1, seed=3)])
        assert batch.src.size == 0
        assert batch.n_nodes == 1

    def test_mean_aggregation_weights(self):
        g = _random_tree(5, seed=4)
        batch = GraphBatch([g], aggregation="mean")
        # weights for edges into the same parent must sum to 1
        for parent in np.unique(batch.dst):
            mask = batch.dst == parent
            assert batch.edge_weight[mask].sum() == pytest.approx(1.0)

    def test_invalid_aggregation(self):
        with pytest.raises(ValueError):
            GraphBatch([_chain_graph(2)], aggregation="max")


class TestDirectedGCN:
    def test_forward_shape(self):
        gcn = DirectedGCN(4, 2, hidden_dim=8, n_conv_layers=2, random_state=0)
        graphs = [_chain_graph(n, seed=n) for n in (1, 3, 6)]
        preds = gcn.predict_graphs(graphs)
        assert preds.shape == (3,)
        assert np.isfinite(preds).all()

    def test_gradient_check_tiny_graph(self):
        gcn = DirectedGCN(3, 1, hidden_dim=4, n_conv_layers=1, dropout=0.0, random_state=0)
        g = PlanGraph(
            node_features=np.array([[0.5, -1.0, 2.0], [1.0, 0.3, -0.2]]),
            edges=np.array([[1], [0]]),
            root=0,
            sys_features=np.array([0.7]),
        )
        target = np.array([2.0])
        batch = GraphBatch([g])

        pred = gcn.forward(batch)
        _, dpred = huber_loss(pred, target)
        for p in gcn.parameters():
            p.zero_grad()
        gcn.backward(dpred)

        eps = 1e-6
        for p in gcn.parameters():
            it = np.nditer(p.value, flags=["multi_index"])
            checked = 0
            while not it.finished and checked < 6:
                idx = it.multi_index
                orig = p.value[idx]
                p.value[idx] = orig + eps
                hi, _ = huber_loss(gcn.forward(batch), target)
                p.value[idx] = orig - eps
                lo, _ = huber_loss(gcn.forward(batch), target)
                p.value[idx] = orig
                num = (hi - lo) / (2 * eps)
                assert p.grad[idx] == pytest.approx(num, abs=1e-5)
                checked += 1
                it.iternext()

    def test_learns_additive_target(self):
        """Sum-aggregation GCN learns a target that is a sum over nodes."""
        rng = np.random.default_rng(5)
        graphs = [_random_tree(int(rng.integers(2, 9)), seed=i) for i in range(250)]
        targets = np.array([g.node_features[:, 0].sum() for g in graphs])
        gcn = DirectedGCN(4, 2, hidden_dim=16, n_conv_layers=3, dropout=0.0, random_state=0)
        gcn.fit(graphs, targets, epochs=50, batch_size=32, lr=3e-3)
        pred = gcn.predict_graphs(graphs)
        assert np.corrcoef(pred, targets)[0, 1] > 0.9

    def test_early_stopping_restores_best(self):
        graphs = [_random_tree(4, seed=i) for i in range(60)]
        targets = np.random.default_rng(0).normal(size=60)  # noise
        gcn = DirectedGCN(4, 2, hidden_dim=8, n_conv_layers=1, random_state=0)
        history = gcn.fit(
            graphs,
            targets,
            epochs=40,
            early_stopping_epochs=3,
            lr=1e-2,
        )
        assert len(history) < 40

    def test_target_length_mismatch_raises(self):
        gcn = DirectedGCN(4, 2, hidden_dim=8, n_conv_layers=1, random_state=0)
        with pytest.raises(ValueError, match="length mismatch"):
            gcn.fit([_chain_graph(2)], np.zeros(5), epochs=1)

    def test_sys_features_affect_prediction(self):
        gcn = DirectedGCN(4, 2, hidden_dim=8, n_conv_layers=1, random_state=0)
        g1 = _chain_graph(3, seed=1)
        g2 = PlanGraph(
            node_features=g1.node_features.copy(),
            edges=g1.edges.copy(),
            root=g1.root,
            sys_features=g1.sys_features + 10.0,
        )
        p1, p2 = gcn.predict_graphs([g1, g2])
        assert p1 != pytest.approx(p2)

    def test_byte_size_positive(self):
        gcn = DirectedGCN(4, 2, hidden_dim=8, n_conv_layers=1, random_state=0)
        assert gcn.byte_size() > 0
