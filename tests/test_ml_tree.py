"""Tests for the histogram binner and regression tree learner."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.tree import Binner, RegressionTree


def _fit_tree_to_targets(X, y, **kwargs):
    """Helper: fit a tree directly to squared-loss gradients of y."""
    binner = Binner(max_bins=32).fit(X)
    binned = binner.transform(X)
    # For squared loss starting at raw=0: grad = -y, hess = 1, so the
    # Newton leaf value approximates the mean of y within the leaf.
    grad = -y
    hess = np.ones_like(y)
    tree = RegressionTree(reg_lambda=0.0, min_samples_leaf=1, **kwargs)
    tree.fit(binned, grad, hess, binner)
    return tree


class TestBinner:
    def test_bins_within_range(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(200, 3))
        binner = Binner(max_bins=16).fit(X)
        binned = binner.transform(X)
        for j in range(3):
            assert binned[:, j].max() < binner.n_bins(j)

    def test_monotone_in_feature_value(self):
        X = np.linspace(0, 1, 100)[:, None]
        binner = Binner(max_bins=8).fit(X)
        binned = binner.transform(X)[:, 0]
        assert (np.diff(binned.astype(int)) >= 0).all()

    def test_constant_feature_single_bin(self):
        X = np.full((50, 1), 7.0)
        binner = Binner(max_bins=8).fit(X)
        assert binner.n_bins(0) <= 2

    def test_invalid_max_bins(self):
        with pytest.raises(ValueError):
            Binner(max_bins=1)
        with pytest.raises(ValueError):
            Binner(max_bins=1000)

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            Binner().transform(np.zeros((2, 2)))

    def test_threshold_value_matches_edges(self):
        X = np.arange(100, dtype=float)[:, None]
        binner = Binner(max_bins=4).fit(X)
        t = binner.threshold_value(0, 0)
        assert X.min() < t < X.max()


class TestRegressionTree:
    def test_perfect_split_on_step_function(self):
        X = np.concatenate([np.zeros(50), np.ones(50)])[:, None]
        y = np.concatenate([np.full(50, -1.0), np.full(50, 3.0)])
        tree = _fit_tree_to_targets(X, y, max_depth=2)
        pred = tree.predict(X)
        np.testing.assert_allclose(pred, y, atol=1e-9)

    def test_depth_zero_returns_mean(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(100, 2))
        y = rng.normal(size=100)
        tree = _fit_tree_to_targets(X, y, max_depth=0)
        pred = tree.predict(X)
        np.testing.assert_allclose(pred, np.full(100, y.mean()), atol=1e-9)

    def test_min_samples_leaf_respected(self):
        X = np.arange(20, dtype=float)[:, None]
        y = np.where(X[:, 0] >= 19, 100.0, 0.0)  # one extreme point
        binner = Binner(max_bins=32).fit(X)
        binned = binner.transform(X)
        tree = RegressionTree(min_samples_leaf=5, reg_lambda=0.0, max_depth=4)
        tree.fit(binned, -y, np.ones_like(y), binner)
        # No leaf may contain fewer than 5 training rows.
        leaves = {}
        pred_bins = tree.predict(X)
        for v in pred_bins:
            leaves[v] = leaves.get(v, 0) + 1
        assert min(leaves.values()) >= 5

    def test_predict_matches_predict_binned(self):
        rng = np.random.default_rng(2)
        X = rng.normal(size=(300, 4))
        y = X[:, 0] * 2 + rng.normal(size=300) * 0.1
        binner = Binner(max_bins=32).fit(X)
        binned = binner.transform(X)
        tree = RegressionTree(max_depth=4, min_samples_leaf=2)
        tree.fit(binned, -y, np.ones_like(y), binner)
        np.testing.assert_allclose(tree.predict(X), tree.predict_binned(binned), atol=1e-12)

    def test_reduces_squared_loss_vs_constant(self):
        rng = np.random.default_rng(3)
        X = rng.normal(size=(400, 3))
        y = np.sin(X[:, 0]) + 0.5 * X[:, 1]
        tree = _fit_tree_to_targets(X, y, max_depth=5)
        pred = tree.predict(X)
        assert np.mean((pred - y) ** 2) < np.var(y)

    def test_n_leaves_and_byte_size(self):
        X = np.arange(100, dtype=float)[:, None]
        y = (X[:, 0] > 50).astype(float)
        tree = _fit_tree_to_targets(X, y, max_depth=3)
        assert tree.n_leaves >= 2
        assert tree.byte_size() > 0

    @given(
        st.integers(min_value=10, max_value=80),
        st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=20, deadline=None)
    def test_leaf_predictions_bounded_by_target_range(self, n, depth):
        """With reg_lambda=0, Newton leaves are in-leaf means, hence within
        the global min/max of the targets."""
        rng = np.random.default_rng(n * depth)
        X = rng.normal(size=(n, 2))
        y = rng.uniform(-5, 5, size=n)
        tree = _fit_tree_to_targets(X, y, max_depth=depth)
        pred = tree.predict(X)
        assert pred.min() >= y.min() - 1e-9
        assert pred.max() <= y.max() + 1e-9
