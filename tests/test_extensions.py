"""Tests for the extension features: confidence intervals, model
serialization, and WLM concurrency scaling."""

import os

import numpy as np
import pytest

from repro.core.config import GlobalModelConfig
from repro.core.interfaces import Prediction
from repro.global_model import (
    GlobalModelTrainer,
    load_global_model,
    record_to_graph,
    save_global_model,
)
from repro.wlm import WLMConfig, simulate_wlm
from repro.workload import FleetConfig, FleetGenerator


class TestConfidenceIntervals:
    def test_point_prediction_collapses(self):
        p = Prediction(exec_time=5.0, variance=0.0)
        assert p.interval(0.9) == (5.0, 5.0)

    def test_interval_contains_estimate(self):
        p = Prediction(exec_time=10.0, variance=0.25)
        low, high = p.interval(0.9)
        assert low < 10.0 < high

    def test_wider_confidence_wider_interval(self):
        p = Prediction(exec_time=10.0, variance=0.25)
        low50, high50 = p.interval(0.5)
        low99, high99 = p.interval(0.99)
        assert low99 < low50 and high99 > high50

    def test_more_variance_wider_interval(self):
        narrow = Prediction(exec_time=10.0, variance=0.04).interval(0.9)
        wide = Prediction(exec_time=10.0, variance=1.0).interval(0.9)
        assert wide[1] - wide[0] > narrow[1] - narrow[0]

    def test_lower_bound_non_negative(self):
        p = Prediction(exec_time=0.01, variance=9.0)
        low, _ = p.interval(0.99)
        assert low >= 0.0

    def test_invalid_confidence(self):
        p = Prediction(exec_time=1.0, variance=1.0)
        with pytest.raises(ValueError):
            p.interval(0.0)
        with pytest.raises(ValueError):
            p.interval(1.0)

    def test_coverage_on_lognormal_data(self):
        """A well-specified interval should cover ~confidence of samples."""
        rng = np.random.default_rng(0)
        mu, sigma = 2.0, 0.5
        samples = np.expm1(rng.normal(mu, sigma, 4000))
        p = Prediction(exec_time=float(np.expm1(mu)), variance=sigma**2)
        low, high = p.interval(0.9)
        coverage = np.mean((samples >= low) & (samples <= high))
        assert 0.85 <= coverage <= 0.95


class TestGlobalModelSerialization:
    @pytest.fixture(scope="class")
    def model_and_trace(self):
        gen = FleetGenerator(FleetConfig(seed=71, volume_scale=0.25))
        train = gen.generate_fleet_traces(4, 1.5, start_index=40)
        model = GlobalModelTrainer(
            GlobalModelConfig(hidden_dim=24, n_conv_layers=2, epochs=6)
        ).train(train)
        trace = gen.generate_trace(gen.sample_instance(0), 1.0)
        return model, trace

    def test_roundtrip_identical_predictions(self, model_and_trace, tmp_path):
        model, trace = model_and_trace
        path = os.path.join(tmp_path, "global.npz")
        save_global_model(model, path)
        loaded = load_global_model(path)
        records = list(trace)[:20]
        graphs = [record_to_graph(r.plan, trace.instance) for r in records]
        np.testing.assert_allclose(
            model.predict_graphs(graphs),
            loaded.predict_graphs(graphs),
            rtol=1e-12,
        )

    def test_file_is_reasonably_small(self, model_and_trace, tmp_path):
        model, _ = model_and_trace
        path = os.path.join(tmp_path, "global.npz")
        save_global_model(model, path)
        assert 0 < os.path.getsize(path) < 5 * 1024 * 1024

    def test_version_check(self, model_and_trace, tmp_path):
        model, _ = model_and_trace
        path = os.path.join(tmp_path, "global.npz")
        save_global_model(model, path)
        data = dict(np.load(path))
        data["meta"] = data["meta"].copy()
        data["meta"][0] = 99
        np.savez_compressed(path, **data)
        with pytest.raises(ValueError, match="format version"):
            load_global_model(path)


class TestConcurrencyScaling:
    def test_disabled_by_default(self):
        arrivals = [0.0, 0.0, 0.0]
        execs = [10.0, 10.0, 10.0]
        result = simulate_wlm(arrivals, execs, execs, WLMConfig(long_slots=1))
        assert all(o.queue != "burst" for o in result.outcomes)

    def test_burst_reduces_latency_under_contention(self):
        rng = np.random.default_rng(3)
        n = 100
        arrivals = np.sort(rng.uniform(0, 50, n))
        execs = rng.exponential(20.0, n) + 6.0  # all long-ish
        preds = execs
        base = simulate_wlm(arrivals, execs, preds, WLMConfig(long_slots=2))
        burst = simulate_wlm(
            arrivals,
            execs,
            preds,
            WLMConfig(long_slots=2, burst_slots=4, burst_startup_s=5.0),
        )
        assert burst.mean_latency < base.mean_latency
        assert any(o.queue == "burst" for o in burst.outcomes)

    def test_burst_only_used_when_long_slots_busy(self):
        # two long queries, two long slots: no need for burst
        arrivals = [0.0, 0.0]
        execs = [10.0, 10.0]
        result = simulate_wlm(
            arrivals,
            execs,
            execs,
            WLMConfig(long_slots=2, burst_slots=2),
        )
        assert all(o.queue == "long" for o in result.outcomes)

    def test_burst_startup_delays_finish(self):
        # one long slot busy; second query overflows to burst with startup
        arrivals = [0.0, 0.0]
        execs = [100.0, 10.0]
        result = simulate_wlm(
            arrivals,
            execs,
            [100.0, 99.0],  # both predicted long; SJF runs qid=1 second
            WLMConfig(long_slots=1, burst_slots=1, burst_startup_s=30.0),
        )
        by_id = {o.query_id: o for o in result.outcomes}
        assert by_id[1].queue == "burst"
        assert by_id[1].latency == pytest.approx(30.0 + 10.0)

    def test_invalid_burst_config(self):
        with pytest.raises(ValueError):
            WLMConfig(burst_slots=-1)
        with pytest.raises(ValueError):
            WLMConfig(burst_startup_s=-1.0)
