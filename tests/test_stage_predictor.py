"""Tests for the Stage predictor's hierarchical routing."""

import numpy as np
import pytest

from repro.core import (
    AutoWLMPredictor,
    OptimalPredictor,
    PredictionSource,
    StagePredictor,
    fast_profile,
)
from repro.core.config import LocalModelConfig, paper_profile
from repro.workload import FleetConfig, FleetGenerator


@pytest.fixture(scope="module")
def trace():
    gen = FleetGenerator(FleetConfig(seed=33, volume_scale=0.3))
    # instance 0 with seed 33 is repetition-heavy; good for cache tests
    return gen.generate_trace(gen.sample_instance(0), 1.5)


def _fast_stage(trace, **overrides):
    cfg = fast_profile()
    if overrides:
        import dataclasses

        cfg = dataclasses.replace(cfg, **overrides)
    return StagePredictor(trace.instance, global_model=None, config=cfg)


class TestProfiles:
    def test_paper_profile_matches_publication(self):
        cfg = paper_profile()
        assert cfg.cache.capacity == 2000
        assert cfg.cache.alpha == 0.8
        assert cfg.local.n_members == 10
        assert cfg.local.n_estimators == 200
        assert cfg.local.max_depth == 6
        assert cfg.local.validation_fraction == 0.2

    def test_fast_profile_is_smaller(self):
        fast, paper = fast_profile(), paper_profile()
        assert fast.local.n_members < paper.local.n_members
        assert fast.local.n_estimators < paper.local.n_estimators


class TestRouting:
    def test_cold_start_uses_default(self, trace):
        stage = _fast_stage(trace)
        pred = stage.predict(trace[0])
        assert pred.source == PredictionSource.DEFAULT

    def test_repeat_hits_cache(self, trace):
        stage = _fast_stage(trace)
        first = trace[0]
        stage.observe(first)
        # identical query again (same features object)
        pred = stage.predict(first)
        assert pred.source == PredictionSource.CACHE
        assert pred.exec_time == pytest.approx(first.exec_time)

    def test_cache_prediction_blends_history(self, trace):
        stage = _fast_stage(trace)
        record = trace[0]
        key = stage.cache.key_for(record.features)
        stage.cache.observe(key, 1.0)
        stage.cache.observe(key, 3.0)
        pred = stage.predict(record)
        # alpha=0.8: 0.8 * mean(1,3) + 0.2 * last(3) = 2.2
        assert pred.exec_time == pytest.approx(0.8 * 2.0 + 0.2 * 3.0)

    def test_local_serves_after_warmup(self, trace):
        stage = _fast_stage(trace)
        for record in list(trace)[:200]:
            stage.predict(record)
            stage.observe(record)
        assert stage.local.is_ready
        counts = stage.source_counts
        assert counts[PredictionSource.LOCAL] > 0
        assert counts[PredictionSource.GLOBAL] == 0  # no global attached

    def test_source_accounting_sums(self, trace):
        stage = _fast_stage(trace)
        n = 150
        for record in list(trace)[:n]:
            stage.predict(record)
            stage.observe(record)
        assert sum(stage.source_counts.values()) == n

    def test_observe_dedup_rule(self, trace):
        """A cache-hit execution must not enter the local training pool."""
        stage = _fast_stage(trace)
        record = trace[0]
        stage.observe(record)  # miss -> pooled
        pool_after_first = len(stage.local.pool)
        stage.observe(record)  # hit -> deduplicated
        assert len(stage.local.pool) == pool_after_first
        assert stage.local.pool.skipped_duplicates >= 1


class TestPredictWithComponents:
    def test_cache_hit_exposes_value_without_local_call(self, trace):
        stage = _fast_stage(trace)
        first = trace[0]
        stage.observe(first)
        routed = stage.predict_with_components(first)
        assert routed.prediction.source == PredictionSource.CACHE
        assert routed.cache is not None
        assert routed.cache.exec_time == pytest.approx(routed.prediction.exec_time)
        assert routed.local is None

    def test_miss_reuses_router_local_answer(self, trace):
        stage = _fast_stage(trace)
        records = list(trace)
        for record in records[:200]:
            stage.predict(record)
            stage.observe(record)
        assert stage.local.is_ready
        # find a record that misses the cache
        routed = None
        for record in records[200:]:
            routed = stage.predict_with_components(record)
            if routed.cache is None:
                break
        assert routed is not None and routed.cache is None
        assert routed.local is not None
        assert routed.local_ready
        assert routed.local_generation == stage.local.n_retrains
        # the routed answer IS the local answer (no global attached)
        assert routed.prediction.exec_time == routed.local.exec_time

    def test_counters_match_plain_predict(self, trace):
        """The component-exposing path must account identically to
        ``predict`` — same source counts, same cache hits/misses."""
        a, b = _fast_stage(trace), _fast_stage(trace)
        for record in list(trace)[:150]:
            a.predict(record)
            b.predict_with_components(record)
            a.observe(record)
            b.observe(record)
        assert a.source_counts == b.source_counts
        assert a.cache.hits == b.cache.hits
        assert a.cache.misses == b.cache.misses
        assert a.cache.hits + a.cache.misses == 150


class _FixedGlobal:
    """Stub global model returning a constant, for routing tests."""

    def __init__(self, value=42.0):
        self.value = value
        self.calls = 0

    def predict(self, plan, instance, n_concurrent=0.0):
        from repro.core.interfaces import Prediction, PredictionSource

        self.calls += 1
        return Prediction(exec_time=self.value, source=PredictionSource.GLOBAL)

    def byte_size(self):
        return 123


class TestGlobalRouting:
    def test_uncertain_long_queries_go_global(self, trace):
        """With an impossible certainty bar, every non-short local
        prediction must escalate to the global model."""
        gm = _FixedGlobal()
        cfg = fast_profile()
        import dataclasses

        cfg = dataclasses.replace(cfg, uncertainty_threshold=0.0, short_circuit_seconds=0.0)
        stage = StagePredictor(trace.instance, global_model=gm, config=cfg)
        for record in list(trace)[:120]:
            stage.predict(record)
            stage.observe(record)
        assert gm.calls > 0
        assert stage.source_counts[PredictionSource.GLOBAL] > 0

    def test_certain_short_queries_stay_local(self, trace):
        gm = _FixedGlobal()
        cfg = fast_profile()
        import dataclasses

        # infinitely tolerant: local is always "certain"
        cfg = dataclasses.replace(cfg, uncertainty_threshold=np.inf)
        stage = StagePredictor(trace.instance, global_model=gm, config=cfg)
        records = list(trace)
        warmup = records[:-50]
        for record in warmup:
            stage.predict(record)
            stage.observe(record)
        assert stage.local.is_ready
        calls_after_warmup = gm.calls
        for record in records[-50:]:
            stage.predict(record)
        # with local ready and always certain, no query escalates
        assert gm.calls == calls_after_warmup
        assert stage.source_counts[PredictionSource.LOCAL] > 0

    def test_components_expose_local_on_escalation(self, trace):
        """When the router escalates to the global model, the local
        answer it computed on the way is still surfaced for reuse."""
        gm = _FixedGlobal()
        cfg = fast_profile()
        import dataclasses

        cfg = dataclasses.replace(cfg, uncertainty_threshold=0.0, short_circuit_seconds=0.0)
        stage = StagePredictor(trace.instance, global_model=gm, config=cfg)
        records = list(trace)
        for record in records[:200]:
            stage.predict(record)
            stage.observe(record)
        assert stage.local.is_ready
        routed = None
        for record in records[200:]:
            routed = stage.predict_with_components(record)
            if routed.cache is None:
                break
        assert routed is not None and routed.cache is None
        assert routed.prediction.source == PredictionSource.GLOBAL
        assert routed.local is not None  # computed and escalated past

    def test_global_used_before_local_ready(self, trace):
        gm = _FixedGlobal()
        stage = StagePredictor(trace.instance, global_model=gm, config=fast_profile())
        pred = stage.predict(trace[0])
        assert pred.source == PredictionSource.GLOBAL
        assert pred.exec_time == 42.0

    def test_global_use_fraction(self, trace):
        gm = _FixedGlobal()
        stage = StagePredictor(trace.instance, global_model=gm, config=fast_profile())
        stage.predict(trace[0])
        assert stage.global_use_fraction == 1.0

    def test_byte_size_excludes_global(self, trace):
        gm = _FixedGlobal()
        stage = StagePredictor(trace.instance, global_model=gm, config=fast_profile())
        for record in list(trace)[:100]:
            stage.observe(record)
        assert stage.byte_size() > 0
        # the shared global model's 123 bytes must not be counted
        assert stage.byte_size() == stage.cache.byte_size() + stage.local.byte_size()


class TestBaselines:
    def test_optimal_returns_truth(self, trace):
        optimal = OptimalPredictor()
        for record in list(trace)[:10]:
            assert optimal.predict(record).exec_time == record.exec_time
            optimal.observe(record)

    def test_autowlm_cold_start_default(self, trace):
        auto = AutoWLMPredictor(config=LocalModelConfig(min_train_size=30))
        pred = auto.predict(trace[0])
        assert pred.source == PredictionSource.DEFAULT

    def test_autowlm_trains_and_predicts(self, trace):
        auto = AutoWLMPredictor(
            config=LocalModelConfig(
                n_estimators=15, max_depth=3, min_train_size=25, retrain_interval=50
            )
        )
        for record in list(trace)[:150]:
            auto.predict(record)
            auto.observe(record)
        assert auto.n_retrains >= 1
        pred = auto.predict(trace[0])
        assert pred.source == PredictionSource.AUTOWLM
        assert pred.exec_time >= 0
        assert auto.byte_size() > 0

    def test_autowlm_no_uncertainty(self, trace):
        auto = AutoWLMPredictor(config=LocalModelConfig(n_estimators=10, min_train_size=20))
        for record in list(trace)[:60]:
            auto.observe(record)
        assert auto.predict(trace[0]).variance == 0.0
