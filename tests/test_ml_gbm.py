"""Tests for the gradient boosting machine."""

import numpy as np
import pytest

from repro.ml.gbm import GradientBoostingModel


@pytest.fixture(scope="module")
def regression_data():
    rng = np.random.default_rng(7)
    X = rng.normal(size=(600, 6))
    y = 2 * X[:, 0] - X[:, 1] ** 2 + 0.3 * rng.normal(size=600)
    return X, y


class TestFitBasics:
    def test_improves_over_constant(self, regression_data):
        X, y = regression_data
        model = GradientBoostingModel(n_estimators=50, max_depth=3, random_state=0)
        model.fit(X, y)
        mse = np.mean((model.predict(X) - y) ** 2)
        assert mse < 0.5 * np.var(y)

    def test_train_loss_non_increasing_without_subsample(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(300, 4))
        y = X[:, 0] + rng.normal(size=300) * 0.1
        model = GradientBoostingModel(
            n_estimators=30,
            max_depth=3,
            subsample=1.0,
            early_stopping_rounds=None,
            random_state=0,
        )
        model.fit(X, y)
        losses = np.array(model.train_losses_)
        assert (np.diff(losses) <= 1e-9).all()

    def test_empty_dataset_raises(self):
        with pytest.raises(ValueError, match="empty"):
            GradientBoostingModel().fit(np.zeros((0, 3)), np.zeros(0))

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError, match="mismatch"):
            GradientBoostingModel().fit(np.zeros((5, 3)), np.zeros(4))

    def test_1d_x_raises(self):
        with pytest.raises(ValueError, match="2-dimensional"):
            GradientBoostingModel().fit(np.zeros(5), np.zeros(5))

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            GradientBoostingModel().predict(np.zeros((2, 2)))

    def test_tiny_dataset_trains(self):
        """Below the early-stopping row threshold the model still fits."""
        X = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = np.array([0.0, 1.0, 2.0, 3.0])
        model = GradientBoostingModel(n_estimators=10, random_state=0)
        model.fit(X, y)
        assert model.predict(X).shape == (4,)


class TestEarlyStopping:
    def test_early_stopping_limits_rounds(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(400, 3))
        y = rng.normal(size=400)  # pure noise: should stop early
        model = GradientBoostingModel(
            n_estimators=200,
            early_stopping_rounds=5,
            random_state=0,
        )
        model.fit(X, y)
        assert model.best_iteration_ < 200
        assert len(model.trees_) == model.best_iteration_

    def test_explicit_eval_set(self, regression_data):
        X, y = regression_data
        model = GradientBoostingModel(n_estimators=40, early_stopping_rounds=5, random_state=0)
        model.fit(X[:400], y[:400], eval_set=(X[400:], y[400:]))
        assert len(model.val_losses_) >= model.best_iteration_

    def test_disabled_early_stopping_runs_all_rounds(self):
        rng = np.random.default_rng(2)
        X = rng.normal(size=(100, 2))
        y = rng.normal(size=100)
        model = GradientBoostingModel(n_estimators=15, early_stopping_rounds=None, random_state=0)
        model.fit(X, y)
        assert len(model.trees_) == 15


class TestObjectives:
    def test_absolute_error_objective(self, regression_data):
        X, y = regression_data
        model = GradientBoostingModel(
            objective="absolute_error",
            n_estimators=60,
            max_depth=3,
            random_state=0,
        )
        model.fit(X, y)
        mae = np.mean(np.abs(model.predict(X) - y))
        assert mae < np.mean(np.abs(y - np.median(y)))

    def test_gaussian_nll_outputs_mean_and_variance(self, regression_data):
        X, y = regression_data
        model = GradientBoostingModel(
            objective="gaussian_nll",
            n_estimators=40,
            max_depth=3,
            random_state=0,
        )
        model.fit(X, y)
        mean, var = model.predict_dist(X)
        assert mean.shape == var.shape == y.shape
        assert (var > 0).all()
        # the mean head should still track the target
        assert np.corrcoef(mean, y)[0, 1] > 0.8

    def test_gaussian_nll_variance_tracks_noise(self):
        """Heteroscedastic data: predicted variance should be larger in the
        high-noise region than in the low-noise region."""
        rng = np.random.default_rng(3)
        n = 2000
        X = rng.uniform(-1, 1, size=(n, 1))
        noise = np.where(X[:, 0] > 0, 2.0, 0.1)
        y = rng.normal(scale=noise)
        model = GradientBoostingModel(
            objective="gaussian_nll",
            n_estimators=60,
            max_depth=2,
            learning_rate=0.2,
            random_state=0,
        )
        model.fit(X, y)
        _, var = model.predict_dist(np.array([[0.5], [-0.5]]))
        assert var[0] > var[1]


class TestSampling:
    def test_subsample_and_colsample(self, regression_data):
        X, y = regression_data
        model = GradientBoostingModel(
            n_estimators=40,
            subsample=0.7,
            colsample=0.5,
            max_depth=3,
            random_state=0,
        )
        model.fit(X, y)
        assert np.mean((model.predict(X) - y) ** 2) < np.var(y)

    def test_seed_reproducibility(self, regression_data):
        X, y = regression_data
        preds = []
        for _ in range(2):
            model = GradientBoostingModel(n_estimators=20, subsample=0.8, random_state=42)
            model.fit(X, y)
            preds.append(model.predict(X[:20]))
        np.testing.assert_allclose(preds[0], preds[1])

    def test_different_seeds_differ(self, regression_data):
        X, y = regression_data
        models = [
            GradientBoostingModel(
                n_estimators=20, subsample=0.8, random_state=s
            ).fit(X, y)
            for s in (0, 1)
        ]
        assert not np.allclose(models[0].predict(X[:50]), models[1].predict(X[:50]))


class TestIntrospection:
    def test_n_trees_counts_params(self, regression_data):
        X, y = regression_data
        model = GradientBoostingModel(
            objective="gaussian_nll",
            n_estimators=10,
            early_stopping_rounds=None,
            random_state=0,
        )
        model.fit(X, y)
        assert model.n_trees == 2 * len(model.trees_)

    def test_byte_size_positive(self, regression_data):
        X, y = regression_data
        model = GradientBoostingModel(n_estimators=5, random_state=0)
        assert model.byte_size() == 0
        model.fit(X, y)
        assert model.byte_size() > 0
