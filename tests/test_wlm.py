"""Tests for the workload-manager simulator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.wlm import (
    FIFOQueue,
    ShortestJobFirstQueue,
    SimulationResult,
    WLMConfig,
    simulate_wlm,
)


class TestQueues:
    def test_fifo_order(self):
        q = FIFOQueue()
        for i in (3, 1, 2):
            q.push(i)
        assert [q.pop(), q.pop(), q.pop()] == [3, 1, 2]

    def test_fifo_empty_pop(self):
        assert FIFOQueue().pop() is None

    def test_sjf_order(self):
        q = ShortestJobFirstQueue()
        q.push(1, priority=10.0)
        q.push(2, priority=1.0)
        q.push(3, priority=5.0)
        assert [q.pop(), q.pop(), q.pop()] == [2, 3, 1]

    def test_sjf_fifo_on_ties(self):
        q = ShortestJobFirstQueue()
        q.push(7, priority=1.0)
        q.push(8, priority=1.0)
        assert [q.pop(), q.pop()] == [7, 8]

    def test_sjf_empty_pop(self):
        assert ShortestJobFirstQueue().pop() is None


class TestConfig:
    def test_invalid_slots(self):
        with pytest.raises(ValueError):
            WLMConfig(short_slots=0)

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            WLMConfig(short_threshold_s=0.0)

    def test_invalid_timeout(self):
        with pytest.raises(ValueError):
            WLMConfig(sqa_timeout_s=-1.0)


def _simulate(arrivals, execs, preds, **cfg):
    return simulate_wlm(arrivals, execs, preds, WLMConfig(**cfg))


class TestSimulatorBasics:
    def test_empty_workload(self):
        result = simulate_wlm([], [], [])
        assert result.outcomes == []

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            simulate_wlm([0.0], [1.0, 2.0], [1.0])

    def test_negative_exec_rejected(self):
        with pytest.raises(ValueError):
            simulate_wlm([0.0], [-1.0], [1.0])

    def test_uncontended_latency_equals_exec(self):
        arrivals = [0.0, 100.0, 200.0]
        execs = [1.0, 2.0, 3.0]
        result = _simulate(arrivals, execs, execs)
        np.testing.assert_allclose(result.latencies(), execs)
        np.testing.assert_allclose(result.waits(), 0.0)

    def test_every_query_completes_once(self):
        rng = np.random.default_rng(0)
        n = 300
        arrivals = np.sort(rng.uniform(0, 100, n))
        execs = rng.exponential(2.0, n)
        result = _simulate(arrivals, execs, execs)
        assert len(result.outcomes) == n
        ids = [o.query_id for o in result.outcomes]
        assert sorted(ids) == list(range(n))
        for o in result.outcomes:
            assert np.isfinite(o.finish)
            assert o.finish >= o.start >= o.arrival

    def test_routing_by_prediction(self):
        # true exec long, but predicted short -> goes to short queue
        result = _simulate(
            [0.0, 0.0],
            [100.0, 0.5],
            [1.0, 100.0],
            sqa_timeout_s=None,
        )
        by_id = {o.query_id: o for o in result.outcomes}
        assert by_id[0].queue == "short"
        assert by_id[1].queue == "long"

    def test_sjf_in_long_queue(self):
        """With one long slot, the shortest-predicted waits least."""
        arrivals = [0.0, 0.01, 0.01]
        execs = [50.0, 30.0, 10.0]
        preds = [50.0, 30.0, 10.0]
        result = _simulate(arrivals, execs, preds, long_slots=1)
        by_id = {o.query_id: o for o in result.outcomes}
        # query 0 grabbed the slot; then 2 (pred 10) runs before 1 (pred 30)
        assert by_id[2].start < by_id[1].start


class TestHeadOfLineBlocking:
    def test_misrouted_long_query_delays_short_queries(self):
        """The paper's motivating failure: a long query predicted short
        blocks the short queue."""
        # one long query misrouted short, then a stream of true short ones
        arrivals = [0.0] + [0.1 * i for i in range(1, 11)]
        execs = [500.0] + [0.1] * 10
        good_preds = [500.0] + [0.1] * 10
        bad_preds = [0.1] + [0.1] * 10  # the long one mispredicted short
        good = _simulate(
            arrivals, execs, good_preds, short_slots=1, long_slots=1, sqa_timeout_s=None
        )
        bad = _simulate(arrivals, execs, bad_preds, short_slots=1, long_slots=1, sqa_timeout_s=None)
        assert bad.mean_latency > good.mean_latency

    def test_sqa_timeout_bounds_blocking(self):
        arrivals = [0.0] + [0.1 * i for i in range(1, 11)]
        execs = [500.0] + [0.1] * 10
        bad_preds = [0.1] + [0.1] * 10
        unbounded = _simulate(
            arrivals, execs, bad_preds, short_slots=1, long_slots=1, sqa_timeout_s=None
        )
        bounded = _simulate(
            arrivals, execs, bad_preds, short_slots=1, long_slots=1, sqa_timeout_s=5.0
        )
        assert bounded.mean_latency < unbounded.mean_latency
        demoted = [o for o in bounded.outcomes if o.demoted]
        assert len(demoted) == 1
        assert demoted[0].query_id == 0
        # the demoted query's latency includes its wasted short attempt
        assert demoted[0].latency >= 500.0 + 5.0

    def test_optimal_not_worse_than_inverted_predictions(self):
        """Perfect predictions should beat maximally wrong ones."""
        rng = np.random.default_rng(1)
        n = 200
        arrivals = np.sort(rng.uniform(0, 50, n))
        execs = rng.lognormal(0.0, 2.0, n)
        optimal = _simulate(arrivals, execs, execs)
        inverted = _simulate(arrivals, execs, 1.0 / np.maximum(execs, 1e-3))
        assert optimal.mean_latency <= inverted.mean_latency


class TestWorkConservation:
    @given(st.integers(min_value=1, max_value=500))
    @settings(max_examples=20, deadline=None)
    def test_no_idle_slot_with_waiting_query(self, seed):
        """At any instant, a query cannot be waiting while a slot of its
        queue class is free: equivalently, a query's wait ends exactly
        when some query of its class finishes (or is zero)."""
        rng = np.random.default_rng(seed)
        n = 60
        arrivals = np.sort(rng.uniform(0, 20, n))
        execs = rng.exponential(3.0, n)
        preds = execs * rng.lognormal(0, 0.5, n)
        result = _simulate(arrivals, execs, preds, sqa_timeout_s=None)
        finishes = {o.finish for o in result.outcomes}
        for o in result.outcomes:
            assert o.wait >= -1e-9
            if o.wait > 1e-9:
                # started exactly when another query finished
                assert any(abs(o.start - f) < 1e-6 for f in finishes)

    @given(st.integers(min_value=1, max_value=200))
    @settings(max_examples=15, deadline=None)
    def test_all_latencies_at_least_exec(self, seed):
        rng = np.random.default_rng(seed)
        n = 80
        arrivals = np.sort(rng.uniform(0, 30, n))
        execs = rng.exponential(1.0, n)
        preds = np.maximum(execs + rng.normal(0, 1, n), 0.0)
        result = _simulate(arrivals, execs, preds)
        for o in result.outcomes:
            assert o.latency >= o.exec_time - 1e-9


class TestAggregates:
    def test_summary_stats(self):
        result = SimulationResult(
            outcomes=[
                type("O", (), {"latency": float(v), "wait": 0.0})()
                for v in (1.0, 2.0, 3.0, 4.0, 100.0)
            ]
        )
        # use the real helpers through arrays
        lat = np.array([o.latency for o in result.outcomes])
        assert result.mean_latency == pytest.approx(lat.mean())
        assert result.median_latency == pytest.approx(np.percentile(lat, 50))
        assert result.tail_latency(90) == pytest.approx(np.percentile(lat, 90))
