"""Tests for the online serving layer (scheduler, service, registry).

The headline contract is serving/replay parity: replaying an instance
``via_service`` — any ``max_batch_size``, any client concurrency —
yields bit-identical predictions and cache/counter accounting to the
direct :func:`~repro.harness.replay.replay_instance` path.  On top of
that, the scheduler's sequencing semantics, the batch router's flush
invariance and the registry's bit-for-bit warm restart are covered
individually.
"""

import multiprocessing
import pickle
import threading
import time
from concurrent.futures import ProcessPoolExecutor

import numpy as np
import pytest

from repro.core.config import GlobalModelConfig, ServiceConfig, fast_profile
from repro.core.stage import BatchRouter, StagePredictor
from repro.global_model import GlobalModelTrainer
from repro.harness import replay_instance
from repro.scenarios import registered_scenarios
from repro.service import ModelRegistry, PredictionService
from repro.workload import FleetConfig, FleetGenerator

ARRAY_ATTRS = (
    "true",
    "arrival",
    "kind",
    "stage_pred",
    "stage_source",
    "autowlm_pred",
    "cache_pred",
    "local_pred",
    "local_std",
    "global_pred",
    "uncertain",
    "stage_interval_low",
    "stage_interval_high",
    "cache_interval_low",
    "cache_interval_high",
    "local_interval_low",
    "local_interval_high",
    "global_interval_low",
    "global_interval_high",
)


def assert_replays_identical(a, b):
    assert a.instance_id == b.instance_id
    for attr in ARRAY_ATTRS:
        x, y = getattr(a, attr), getattr(b, attr)
        assert np.array_equal(x, y, equal_nan=x.dtype.kind == "f"), attr
    assert a.stage_stats == b.stage_stats


@pytest.fixture(scope="module")
def trace():
    """A trace that exercises every route: cache, local, global, default."""
    gen = FleetGenerator(FleetConfig(seed=3, volume_scale=0.2))
    return gen.generate_trace(gen.sample_instance(0), 1.5)


@pytest.fixture(scope="module")
def global_model():
    gen = FleetGenerator(FleetConfig(seed=3, volume_scale=0.2))
    train = gen.generate_fleet_traces(2, 1.0, start_index=10_000)
    return GlobalModelTrainer(
        GlobalModelConfig(
            hidden_dim=24, n_conv_layers=2, epochs=4, max_queries_per_instance=100
        )
    ).train(train)


@pytest.fixture(scope="module")
def reference_replay(trace, global_model):
    return replay_instance(trace, global_model=global_model, config=fast_profile())


# ---------------------------------------------------------------------------
# serving/replay parity
# ---------------------------------------------------------------------------
class TestViaServiceParity:
    @pytest.mark.parametrize(
        "max_batch_size,service_clients",
        [(1, 1), (7, 3), (64, 2), (16, 5)],
    )
    def test_bit_identical_to_direct_replay(
        self, trace, global_model, reference_replay, max_batch_size, service_clients
    ):
        via = replay_instance(
            trace,
            global_model=global_model,
            config=fast_profile(),
            via_service=True,
            service_config=ServiceConfig(max_batch_size=max_batch_size),
            service_clients=service_clients,
        )
        assert_replays_identical(reference_replay, via)

    def test_parity_without_global_model(self, trace):
        direct = replay_instance(trace, config=fast_profile())
        via = replay_instance(
            trace,
            config=fast_profile(),
            via_service=True,
            service_config=ServiceConfig(max_batch_size=9),
            service_clients=2,
        )
        assert_replays_identical(direct, via)

    def test_parity_without_component_collection(self, trace, global_model):
        direct = replay_instance(
            trace,
            global_model=global_model,
            config=fast_profile(),
            collect_components=False,
        )
        via = replay_instance(
            trace,
            global_model=global_model,
            config=fast_profile(),
            collect_components=False,
            via_service=True,
            service_config=ServiceConfig(max_batch_size=12),
            service_clients=3,
        )
        assert_replays_identical(direct, via)

    def test_every_route_exercised(self, reference_replay):
        counts = reference_replay.stage_stats["source_counts"]
        assert counts["cache"] > 0
        assert counts["local"] > 0
        assert counts["global"] > 0
        assert reference_replay.stage_stats["n_local_retrains"] >= 1

    def test_via_service_rejects_per_query_mode(self, trace):
        with pytest.raises(ValueError, match="batched"):
            replay_instance(
                trace,
                config=fast_profile(),
                via_service=True,
                component_inference="per_query",
            )


# ---------------------------------------------------------------------------
# serving/replay parity under every registered stress scenario
# ---------------------------------------------------------------------------
class TestScenarioServingParity:
    """A scenario can never ship that drifts serving from replay.

    Every registered scenario's mutated workload must replay through a
    live service bit-identically — arrays *and* cache/counter
    accounting (``assert_replays_identical`` compares ``stage_stats``
    key-for-key).  New scenarios are covered automatically: the
    parametrization reads the registry.
    """

    @pytest.mark.parametrize("scenario", registered_scenarios(), ids=lambda s: s.name)
    def test_scenario_bit_identical_via_service(self, scenario):
        gen = FleetGenerator(FleetConfig(seed=5, volume_scale=0.12, scenario=scenario.config))
        scenario_trace = gen.generate_trace(gen.sample_instance(0), 1.0)
        direct = replay_instance(scenario_trace, config=fast_profile())
        via = replay_instance(
            scenario_trace,
            config=fast_profile(),
            via_service=True,
            service_config=ServiceConfig(max_batch_size=6),
            service_clients=2,
        )
        assert_replays_identical(direct, via)


# ---------------------------------------------------------------------------
# the batch router: flush points never change results
# ---------------------------------------------------------------------------
class TestBatchRouter:
    @pytest.mark.parametrize("flush_every", [1, 3, 17])
    def test_flush_cadence_invariance(self, trace, flush_every):
        cfg = fast_profile()
        sequential = StagePredictor(trace.instance, config=cfg, random_state=0)
        seq_preds = []
        for record in trace:
            seq_preds.append(sequential.predict_with_components(record))
            sequential.observe(record)

        batched = StagePredictor(trace.instance, config=cfg, random_state=0)
        router = BatchRouter(batched)
        slots = []
        for i, record in enumerate(trace):
            slots.append(router.route(record))
            router.observe(record)
            if (i + 1) % flush_every == 0:
                router.flush()
        router.flush()

        for want, slot in zip(seq_preds, slots):
            got = slot.components
            assert got.prediction == want.prediction
            assert got.cache == want.cache
            assert got.local == want.local
        assert sequential.source_counts == batched.source_counts
        assert sequential.cache.hits == batched.cache.hits
        assert sequential.cache.misses == batched.cache.misses


# ---------------------------------------------------------------------------
# the scheduler
# ---------------------------------------------------------------------------
def _scheduler_service(trace, **kwargs):
    service = PredictionService(
        trace.instance,
        stage_config=fast_profile(),
        service_config=ServiceConfig(**kwargs),
    )
    return service


class TestServiceConfigValidation:
    """Bad knobs die at config construction, before any thread spawns."""

    def test_zero_batch_size_rejected(self):
        with pytest.raises(ValueError, match="max_batch_size"):
            ServiceConfig(max_batch_size=0)

    def test_negative_batch_size_rejected(self):
        with pytest.raises(ValueError, match="max_batch_size"):
            ServiceConfig(max_batch_size=-4)

    def test_negative_batch_latency_rejected(self):
        with pytest.raises(ValueError, match="max_batch_latency_ms"):
            ServiceConfig(max_batch_latency_ms=-0.5)

    def test_nonpositive_drain_timeout_rejected(self):
        with pytest.raises(ValueError, match="drain_timeout_s"):
            ServiceConfig(drain_timeout_s=0.0)

    def test_defaults_are_valid(self):
        ServiceConfig()  # must not raise


class TestScheduler:
    def test_out_of_order_submission_executes_in_sequence(self, trace):
        with _scheduler_service(trace, max_batch_size=4) as service:
            records = [trace[i] for i in range(20)]
            # submit the fused stream from the back: the sequencer must
            # hold early arrivals until the gap fills
            futures = {}
            for i in reversed(range(len(records))):
                futures[i] = service.predict_async(records[i], seq=2 * i)
                service.observe(records[i], seq=2 * i + 1)
            got = [futures[i].result(timeout=60).prediction for i in range(len(records))]
            service.drain()

        stage = StagePredictor(trace.instance, config=fast_profile())
        want = []
        for record in records:
            want.append(stage.predict(record))
            stage.observe(record)
        assert got == want

    def test_duplicate_sequence_number_rejected(self, trace):
        with _scheduler_service(trace) as service:
            service.predict_async(trace[0], seq=5)
            with pytest.raises(ValueError, match="already used"):
                service.predict_async(trace[1], seq=5)

    def test_unknown_op_kind_rejected(self, trace):
        with _scheduler_service(trace) as service:
            with pytest.raises(ValueError, match="unknown op kind"):
                service.scheduler.submit("retrain", trace[0])

    def test_submit_after_close_rejected(self, trace):
        service = _scheduler_service(trace)
        service.close()
        with pytest.raises(RuntimeError, match="closed"):
            service.predict_async(trace[0])

    def test_close_fails_ops_stranded_behind_gap(self, trace):
        service = _scheduler_service(trace)
        service.predict_async(trace[0], seq=0).result(timeout=60)
        stranded = service.predict_async(trace[1], seq=7)  # gap at 1..6
        service.close()
        with pytest.raises(RuntimeError, match="closed"):
            stranded.result(timeout=60)

    def test_replay_components_on_warm_service(self, trace):
        """The replay hook bases its sequence numbers at the scheduler's
        next slot, so it works after live traffic (and back-to-back)."""
        with _scheduler_service(trace, max_batch_size=4) as service:
            for i in range(10):
                service.predict_async(trace[i])
                service.observe(trace[i])
            service.drain()
            first = service.replay_components(trace, n_clients=2)
            second = service.replay_components(trace, n_clients=3)
            assert len(first) == len(second) == len(trace)
            n_ops = service.stats()["scheduler"]["n_predicts"]
        assert n_ops == 10 + 2 * len(trace)

    def test_batching_counters(self, trace):
        with _scheduler_service(trace, max_batch_size=8) as service:
            for record in trace:
                service.predict_async(record)
                service.observe(record)
            service.drain()
            stats = service.stats()
        sched = stats["scheduler"]
        assert sched["n_predicts"] == len(trace)
        assert sched["n_observes"] == len(trace)
        assert sched["n_immediate"] + sched["n_deferred"] == sched["n_predicts"]
        assert sched["max_batch_size"] <= 8
        # accounting matches the stage predictor exactly
        counts = stats["stage"]["source_counts"]
        assert sum(counts.values()) == len(trace)

    def test_cold_service_lifecycle_never_hangs(self, trace, tmp_path):
        """A never-started service (no op ever submitted, so no worker
        thread exists) must drain, snapshot, close and re-close without
        blocking or raising anything implicit."""
        service = _scheduler_service(trace)
        assert service.scheduler._worker is None  # genuinely cold
        service.drain()  # nothing to wait for
        registry = ModelRegistry(str(tmp_path))
        service.snapshot(registry, "cold")  # pause/quiesce with no worker
        assert registry.list_service_snapshots() == ["cold"]
        service.close()
        assert service.closed
        service.close()  # double-close is a no-op
        assert service.scheduler._worker is None

    def test_replay_components_on_closed_service_raises(self, trace):
        service = _scheduler_service(trace)
        service.close()
        with pytest.raises(RuntimeError, match="closed service"):
            service.replay_components(trace)

    def test_submit_after_close_on_cold_service_rejected(self, trace):
        service = _scheduler_service(trace)
        service.close()
        with pytest.raises(RuntimeError, match="closed"):
            service.predict_async(trace[0])

    def test_drain_after_close_returns_immediately(self, trace):
        service = _scheduler_service(trace)
        service.predict_async(trace[0]).result(timeout=60)
        service.close()
        t0 = time.monotonic()
        service.drain(timeout=60)  # closed + empty: nothing to wait for
        assert time.monotonic() - t0 < 5.0

    def test_drain_with_dead_worker_raises_instead_of_hanging(self, trace):
        """Queued ops with no live worker are undrainable; drain must say
        so immediately rather than waiting out the full timeout."""
        service = _scheduler_service(trace)
        service.predict_async(trace[0]).result(timeout=60)
        scheduler = service.scheduler
        scheduler.close()
        # simulate a worker that died with work still queued (the close
        # above cleanly stopped the thread; re-arm the queue behind it)
        scheduler._closed = False
        scheduler._ops[scheduler._next_exec_seq] = object()
        with pytest.raises(RuntimeError, match="can never drain"):
            scheduler.drain(timeout=60)
        scheduler._ops.clear()
        scheduler._closed = True

    def test_double_close_after_traffic_is_noop(self, trace):
        service = _scheduler_service(trace)
        service.predict_async(trace[0]).result(timeout=60)
        service.close()
        service.close()
        assert service.closed

    def test_concurrent_live_clients_make_progress(self, trace):
        # live mode: auto-assigned sequence numbers, blocking clients
        with _scheduler_service(
            trace, max_batch_size=4, max_batch_latency_ms=1.0
        ) as service:
            records = [trace[i] for i in range(40)]
            results = [None] * len(records)
            position = {"next": 0}
            lock = threading.Lock()

            def client():
                while True:
                    with lock:
                        i = position["next"]
                        if i >= len(records):
                            return
                        position["next"] = i + 1
                    results[i] = service.predict(records[i], timeout=60)

            threads = [threading.Thread(target=client) for _ in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert all(r is not None for r in results)
            assert service.stats()["scheduler"]["n_predicts"] == len(records)


# ---------------------------------------------------------------------------
# the registry
# ---------------------------------------------------------------------------
def _warm_service(trace, global_model, n_warm, **service_kwargs):
    service = PredictionService(
        trace.instance,
        global_model=global_model,
        stage_config=fast_profile(),
        service_config=ServiceConfig(**service_kwargs),
        random_state=0,
    )
    for i in range(n_warm):
        service.predict_async(trace[i])
        service.observe(trace[i])
    service.drain()
    return service


def _held_out_predictions(service, records):
    """Fused predict+observe over ``records``; returns the predictions."""
    futures = [None] * len(records)
    for i, record in enumerate(records):
        futures[i] = service.predict_async(record)
        service.observe(record)
    service.drain()
    return [f.result(timeout=60).prediction for f in futures]


def _restore_and_predict(args):
    """Spawn-able worker: restore a snapshot cold and serve a stream."""
    registry_root, name, records = args
    registry = ModelRegistry(registry_root)
    service = PredictionService.restore(
        registry, name, service_config=ServiceConfig(max_batch_size=5)
    )
    predictions = _held_out_predictions(service, records)
    stats = service.stats()["stage"]
    service.close()
    return pickle.dumps((predictions, stats))


class TestModelRegistry:
    def test_global_model_round_trip(self, global_model, trace, tmp_path):
        registry = ModelRegistry(str(tmp_path))
        registry.save_global_model(global_model, "fleet")
        assert registry.list_global_models() == ["fleet"]
        loaded = registry.load_global_model("fleet")
        record = trace[0]
        want = global_model.predict(record.plan, trace.instance)
        got = loaded.predict(record.plan, trace.instance)
        assert got.exec_time == want.exec_time

    def test_snapshot_round_trip_same_process(self, trace, global_model, tmp_path):
        registry = ModelRegistry(str(tmp_path))
        n_warm = len(trace) // 2
        held = [trace[i] for i in range(n_warm, len(trace))]

        service = _warm_service(trace, global_model, n_warm, max_batch_size=8)
        service.snapshot(registry, "warm")
        assert registry.list_service_snapshots() == ["warm"]
        want = _held_out_predictions(service, held)
        want_stats = service.stats()["stage"]
        service.close()

        restored = PredictionService.restore(
            registry, "warm", service_config=ServiceConfig(max_batch_size=3)
        )
        got = _held_out_predictions(restored, held)
        got_stats = restored.stats()["stage"]
        restored.close()

        assert got == want
        assert got_stats == want_stats

    def test_snapshot_round_trip_fresh_process(self, trace, global_model, tmp_path):
        """Warm restart in a brand-new interpreter is bit-for-bit."""
        registry = ModelRegistry(str(tmp_path))
        n_warm = len(trace) // 2
        held = [trace[i] for i in range(n_warm, len(trace))]

        service = _warm_service(trace, global_model, n_warm, max_batch_size=8)
        service.snapshot(registry, "warm")
        want = _held_out_predictions(service, held)
        want_stats = service.stats()["stage"]
        service.close()

        with ProcessPoolExecutor(
            max_workers=1, mp_context=multiprocessing.get_context("spawn")
        ) as pool:
            payload = pool.submit(
                _restore_and_predict, (str(tmp_path), "warm", held)
            ).result(timeout=300)
        got, got_stats = pickle.loads(payload)

        assert got == want
        assert got_stats == want_stats

    def test_snapshot_under_concurrent_traffic(self, trace, tmp_path):
        """snapshot() pauses the scheduler: live clients never corrupt it."""
        registry = ModelRegistry(str(tmp_path))
        service = _warm_service(trace, None, len(trace) // 2, max_batch_size=4)
        stop = threading.Event()

        def hammer():
            i = 0
            while not stop.is_set():
                record = trace[i % len(trace)]
                service.predict(record, timeout=60)
                service.observe(record)
                i += 1

        thread = threading.Thread(target=hammer)
        thread.start()
        try:
            for round_index in range(3):
                name = f"live-{round_index}"
                service.snapshot(registry, name)
                restored = registry.load_service(name)
                # the restored copy serves immediately
                assert restored.predict(trace[0], timeout=60).exec_time >= 0.0
                restored.close()
        finally:
            stop.set()
            thread.join()
        service.drain()
        service.close()

    def test_snapshot_without_global_model(self, trace, tmp_path):
        registry = ModelRegistry(str(tmp_path))
        service = _warm_service(trace, None, len(trace) // 2, max_batch_size=4)
        path = service.snapshot(registry, "local-only")
        service.close()
        import os

        assert not os.path.exists(os.path.join(path, "global.npz"))
        restored = registry.load_service("local-only")
        assert restored.stage.global_model is None
        restored.close()

    def test_unsupported_snapshot_version_rejected(self, trace, tmp_path):
        registry = ModelRegistry(str(tmp_path))
        service = _warm_service(trace, None, 10, max_batch_size=4)
        path = service.snapshot(registry, "v-test")
        service.close()
        import os

        state_path = os.path.join(path, "state.pkl")
        payload = pickle.load(open(state_path, "rb"))
        payload["format_version"] = 999
        pickle.dump(payload, open(state_path, "wb"))
        with pytest.raises(ValueError, match="version"):
            registry.load_service("v-test")
