"""Tests for the declarative stress-scenario engine.

The headline contracts: every registered scenario (1) generates
bit-identical traces and replays for any ``n_jobs``, and (2) replays
bit-identically through the online ``PredictionService``
(``via_service=True``) — mutations are pure, per-instance-seeded
transforms, so neither process fan-out nor the serving path can change
a single bit.  On top of that, each mutation's observable effect on the
trace is pinned down individually, as are the registry semantics and
the CLI.
"""

import numpy as np
import pytest

# the parity helpers are owned by the service suite (one definition, so
# a new InstanceReplay array can never be covered in one file and
# silently skipped in the other); pytest puts tests/ on sys.path
from test_service import assert_replays_identical

from repro.harness import FleetSweeper, replay_instance
from repro.scenarios import (
    Scenario,
    ScenarioConfig,
    ScenarioRunner,
    ScenarioSweepConfig,
    get_scenario,
    register_scenario,
    registered_scenarios,
    render_matrix,
)
from repro.scenarios.engine import _REGISTRY
from repro.core.config import ServiceConfig, fast_profile
from repro.workload import FleetConfig, FleetGenerator, QueryKind
from repro.workload.scenario import InstanceScenario
from repro.workload.seeding import derive_seed

SEED = 11
VOLUME = 0.15
DURATION = 1.0


def make_trace(scenario_config=None, seed=SEED, index=0, duration=DURATION):
    gen = FleetGenerator(FleetConfig(seed=seed, volume_scale=VOLUME, scenario=scenario_config))
    return gen.generate_trace(gen.sample_instance(index), duration)


@pytest.fixture(scope="module")
def baseline_trace():
    return make_trace(None)


# ---------------------------------------------------------------------------
# the mutations, one by one (trace-level effects)
# ---------------------------------------------------------------------------
class TestMutations:
    def test_null_scenario_is_byte_identical_to_none(self, baseline_trace):
        """An all-off ScenarioConfig must not perturb the baseline workload."""
        trace = make_trace(ScenarioConfig())
        assert len(trace) == len(baseline_trace)
        for a, b in zip(baseline_trace, trace):
            assert a.arrival_time == b.arrival_time
            assert a.exec_time == b.exec_time
            assert (a.template_id, a.variant_id, a.plan_epoch) == (
                b.template_id,
                b.variant_id,
                b.plan_epoch,
            )

    def test_burst_storm_adds_surge_arrivals(self, baseline_trace):
        trace = make_trace(ScenarioConfig(burst_storms_per_week=30.0, burst_multiplier=8.0))
        assert len(trace) > len(baseline_trace)
        # the surge is concentrated: some 2h window holds far more than
        # its share of arrivals
        times = np.array([r.arrival_time for r in trace])
        windows = np.histogram(times, bins=int(DURATION * 12))[0]
        assert windows.max() > 3 * max(np.median(windows), 1)

    def test_onboarding_wave_starts_cold_mid_trace(self, baseline_trace):
        config = ScenarioConfig(onboard_fraction=1.0, onboard_window_fraction=0.6)
        trace = make_trace(config)
        scenario = InstanceScenario.realize(config, trace.instance.seed, DURATION)
        assert scenario.onboard_day > 0
        assert len(trace) < len(baseline_trace)
        first_day = trace[0].arrival_time / 86_400.0
        assert first_day >= scenario.onboard_day

    def test_template_churn_retires_and_replaces(self, baseline_trace):
        config = ScenarioConfig(churn_rate_per_week=3.0)
        trace = make_trace(config)
        base_ids = {r.template_id for r in baseline_trace}
        new_ids = {r.template_id for r in trace} - base_ids
        assert new_ids, "churn must introduce replacement templates"

        # white-box pairing: rebuild the same templates and apply churn —
        # each replacement keeps its retiree's kind/cadence and starts
        # exactly at the retirement day
        fleet_config = FleetConfig(seed=SEED, volume_scale=VOLUME, scenario=config)
        gen = FleetGenerator(fleet_config)
        instance = gen.sample_instance(0)
        rng = np.random.default_rng(derive_seed(fleet_config.seed, "trace", instance.seed))
        templates = gen._build_templates(instance, DURATION, rng)
        scenario = InstanceScenario.realize(config, instance.seed, DURATION)
        churned = gen._apply_template_churn(templates, scenario, instance, DURATION)
        churnable = [t for t in templates if t.kind in (QueryKind.DASHBOARD, QueryKind.REPORT)]
        retired = [t for t in churnable if np.isfinite(t.end_day)]
        replacements = churned[len(templates) :]
        assert len(replacements) == len(retired) > 0
        for retiree, replacement in zip(retired, replacements):
            assert replacement.start_day == retiree.end_day
            assert replacement.kind == retiree.kind
            assert replacement.arrival_params == retiree.arrival_params
            assert replacement.template_id not in {t.template_id for t in templates}

        # and in the generated trace, no replacement arrives before the
        # earliest retirement
        first_new = min(r.arrival_time for r in trace if r.template_id in new_ids)
        assert first_new >= min(t.end_day for t in retired) * 86_400.0

    def test_seasonal_cycle_thins_toward_trough(self, baseline_trace):
        trace = make_trace(ScenarioConfig(seasonal_amplitude=0.8, seasonal_period_days=1.0))
        assert 0 < len(trace) < len(baseline_trace)
        # thinning only removes arrivals, never invents or moves them
        base_times = {r.arrival_time for r in baseline_trace}
        assert all(r.arrival_time in base_times for r in trace)

    def test_resize_shifts_latency_model_not_arrivals(self, baseline_trace):
        trace = make_trace(
            ScenarioConfig(
                resize_events_per_week=14.0,
                resize_factor_low=0.2,
                resize_factor_high=0.4,
            )
        )
        assert len(trace) == len(baseline_trace)
        for a, b in zip(baseline_trace, trace):
            assert a.arrival_time == b.arrival_time
            assert a.template_id == b.template_id
        assert any(a.exec_time != b.exec_time for a, b in zip(baseline_trace, trace))

    def test_analyze_outage_stretches_epochs(self, baseline_trace):
        trace = make_trace(ScenarioConfig(analyze_outages_per_week=21.0, analyze_outage_days=3.0))
        base_epochs = {r.plan_epoch for r in baseline_trace}
        outage_epochs = {r.plan_epoch for r in trace}
        assert len(outage_epochs) < len(base_epochs)

    def test_mutations_compose(self, baseline_trace):
        trace = make_trace(
            ScenarioConfig(
                burst_storms_per_week=30.0,
                churn_rate_per_week=3.0,
                analyze_outages_per_week=21.0,
                analyze_outage_days=3.0,
            )
        )
        assert len(trace) > 0
        assert {r.template_id for r in trace} - {r.template_id for r in baseline_trace}

    def test_scenario_trace_is_deterministic(self):
        config = ScenarioConfig(burst_storms_per_week=30.0, churn_rate_per_week=2.0)
        a, b = make_trace(config), make_trace(config)
        assert len(a) == len(b)
        for x, y in zip(a, b):
            assert x.arrival_time == y.arrival_time
            assert x.exec_time == y.exec_time


# ---------------------------------------------------------------------------
# validation
# ---------------------------------------------------------------------------
class TestScenarioConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"burst_storms_per_week": -1.0},
            {"burst_duration_hours": 0.0},
            {"burst_multiplier": 0.5},
            {"onboard_fraction": 1.5},
            {"onboard_window_fraction": 0.0},
            {"churn_rate_per_week": -0.1},
            {"seasonal_amplitude": 2.0},
            {"seasonal_period_days": 0.0},
            {"resize_events_per_week": -2.0},
            {"resize_factor_low": 0.0},
            {"resize_factor_low": 3.0, "resize_factor_high": 2.0},
            {"analyze_outages_per_week": -1.0},
            {"analyze_outage_days": 0.0},
        ],
    )
    def test_invalid_knobs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ScenarioConfig(**kwargs)

    def test_is_null(self):
        assert ScenarioConfig().is_null
        assert not ScenarioConfig(burst_storms_per_week=1.0).is_null

    def test_invalid_duration_rejected(self):
        gen = FleetGenerator(FleetConfig(seed=SEED))
        with pytest.raises(ValueError, match="duration_days"):
            gen.generate_trace(gen.sample_instance(0), 0.0)


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------
class TestRegistry:
    def test_builtin_matrix_is_at_least_six_scenarios(self):
        scenarios = registered_scenarios()
        assert len(scenarios) >= 6
        assert scenarios[0].name == "baseline"
        assert scenarios[0].config.is_null

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_scenario(Scenario("baseline", "dup"))

    def test_replace_registration(self):
        custom = Scenario("tmp_custom", "x", ScenarioConfig(seasonal_amplitude=0.5))
        try:
            register_scenario(custom)
            replacement = Scenario("tmp_custom", "y")
            assert register_scenario(replacement, replace=True) is replacement
            assert get_scenario("tmp_custom").description == "y"
        finally:
            _REGISTRY.pop("tmp_custom", None)

    def test_unknown_scenario_raises(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            get_scenario("no-such-scenario")

    def test_invalid_name_rejected(self):
        with pytest.raises(ValueError, match="name"):
            Scenario("has space", "x")


# ---------------------------------------------------------------------------
# the two hard contracts, per scenario
# ---------------------------------------------------------------------------
def _scenario_params():
    return pytest.mark.parametrize("scenario", registered_scenarios(), ids=lambda s: s.name)


SWEEP = ScenarioSweepConfig(seed=SEED, n_instances=2, duration_days=DURATION, volume_scale=VOLUME)


@pytest.fixture(scope="module")
def direct_replays():
    """Reference replays (n_jobs=1, direct path), one run per scenario."""
    runner = ScenarioRunner(SWEEP)
    return {s.name: runner.run(s).replays for s in registered_scenarios()}


class TestScenarioParity:
    @_scenario_params()
    def test_bit_identical_across_n_jobs(self, scenario, direct_replays):
        from dataclasses import replace

        parallel = ScenarioRunner(replace(SWEEP, n_jobs=2)).run(scenario).replays
        for want, got in zip(direct_replays[scenario.name], parallel):
            assert_replays_identical(want, got)

    @_scenario_params()
    def test_bit_identical_via_service(self, scenario, direct_replays):
        from dataclasses import replace

        runner = ScenarioRunner(
            replace(
                SWEEP,
                via_service=True,
                service_config=ServiceConfig(max_batch_size=7),
                service_clients=3,
            )
        )
        via = runner.run(scenario).replays
        for want, got in zip(direct_replays[scenario.name], via):
            assert_replays_identical(want, got)

    def test_fleet_sweeper_via_service_matches_replay_instance(self, baseline_trace):
        """The sweeper's service hook is the same path replay_instance takes."""
        sweeper = FleetSweeper(
            fleet_config=FleetConfig(seed=SEED, volume_scale=VOLUME),
            stage_config=fast_profile(),
            via_service=True,
            service_config=ServiceConfig(max_batch_size=5),
            service_clients=2,
        )
        (got,) = sweeper.replay_traces([baseline_trace])
        want = replay_instance(
            baseline_trace,
            config=fast_profile(),
            via_service=True,
            service_config=ServiceConfig(max_batch_size=5),
            service_clients=2,
        )
        assert_replays_identical(want, got)


# ---------------------------------------------------------------------------
# runner + reporting + CLI
# ---------------------------------------------------------------------------
class TestRunnerAndReport:
    def test_metrics_are_finite_and_consistent(self, direct_replays):
        runner = ScenarioRunner(SWEEP)
        result = runner.run(get_scenario("baseline"))
        m = result.metrics
        assert m["n_queries"] == sum(len(r) for r in result.replays)
        assert 0 <= m["cache_hit_rate"] <= 1
        assert np.isfinite(m["stage_mae"]) and np.isfinite(m["autowlm_mae"])

    def test_render_matrix_has_one_row_per_scenario(self, direct_replays):
        from repro.scenarios.engine import ScenarioResult

        results = [
            ScenarioResult(get_scenario(name), replays)
            for name, replays in direct_replays.items()
        ]
        report = render_matrix(results, SWEEP)
        for name in direct_replays:
            assert name in report

    def test_runner_rejects_empty_matrix(self):
        with pytest.raises(ValueError, match="no scenarios"):
            ScenarioRunner(SWEEP, scenarios=())

    def test_cli_list_and_subset(self, capsys, tmp_path):
        from repro.scenarios.__main__ import main

        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for scenario in registered_scenarios():
            assert scenario.name in out

        out_path = tmp_path / "matrix.txt"
        rc = main(
            [
                "--scenarios",
                "baseline",
                "--instances",
                "1",
                "--duration-days",
                "1.0",
                "--volume-scale",
                "0.1",
                "--out",
                str(out_path),
            ]
        )
        assert rc == 0
        assert "baseline" in out_path.read_text()
