"""Tests for the synthetic workload substrate."""

import numpy as np
import pytest

from repro.plans import featurize_plan
from repro.workload import (
    EXEC_TIME_BUCKETS,
    FleetConfig,
    FleetGenerator,
    InstanceProfile,
    QueryKind,
    Table,
    TrueCostModel,
    bucket_counts,
    bucket_of,
    fleet_exec_times,
    fleet_unique_daily_fractions,
)
from repro.workload.arrival import (
    adhoc_arrivals,
    burst_arrivals,
    burst_windows,
    dashboard_arrivals,
    etl_arrivals,
    report_arrivals,
    seasonal_thin,
)
from repro.workload.drift import (
    AnalyzeSchedule,
    ResizeSchedule,
    sample_outage_windows,
    sample_template_retirements,
    sample_template_start_days,
)
from repro.workload.instance import HARDWARE_CLASSES
from repro.workload.plangen import PlanGenerator
from repro.workload.seeding import derive_seed


@pytest.fixture(scope="module")
def small_fleet():
    gen = FleetGenerator(FleetConfig(seed=7, volume_scale=0.15))
    traces = gen.generate_fleet_traces(12, duration_days=2.0)
    return gen, traces


class TestSeeding:
    def test_deterministic(self):
        assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)

    def test_order_sensitive(self):
        assert derive_seed(1, 2) != derive_seed(2, 1)

    def test_no_concat_ambiguity(self):
        assert derive_seed("ab", "c") != derive_seed("a", "bc")


class TestArrivals:
    def test_dashboard_periodicity(self):
        rng = np.random.default_rng(0)
        events = dashboard_arrivals(rng, 0.0, 86400.0, period_s=600.0)
        assert 100 <= len(events) <= 160  # ~144 expected
        times = [t for t, _ in events]
        assert all(0 <= t < 86400 for t in times)

    def test_dashboard_variants_within_pool(self):
        rng = np.random.default_rng(1)
        events = dashboard_arrivals(rng, 0.0, 86400.0, 300.0, n_variants=3)
        assert {v for _, v in events} <= {0, 1, 2}

    def test_dashboard_invalid_period(self):
        with pytest.raises(ValueError):
            dashboard_arrivals(np.random.default_rng(0), 0, 1, 0.0)

    def test_report_variant_is_day(self):
        rng = np.random.default_rng(2)
        events = report_arrivals(rng, 0.0, 3 * 86400.0, runs_per_day=5.0)
        for t, v in events:
            assert v == int(t // 86400)

    def test_adhoc_rerun_produces_repeats(self):
        rng = np.random.default_rng(3)
        events = adhoc_arrivals(rng, 0.0, 86400.0, mean_per_day=200, rerun_probability=0.5)
        variants = [v for _, v in events]
        assert len(set(variants)) < len(variants)

    def test_adhoc_zero_rerun_all_unique(self):
        rng = np.random.default_rng(4)
        events = adhoc_arrivals(rng, 0.0, 86400.0, mean_per_day=100, rerun_probability=0.0)
        variants = [v for _, v in events]
        assert len(set(variants)) == len(variants)

    def test_adhoc_invalid_rerun_probability(self):
        with pytest.raises(ValueError):
            adhoc_arrivals(np.random.default_rng(0), 0, 1, 10, rerun_probability=2.0)

    def test_etl_runs_at_night(self):
        rng = np.random.default_rng(5)
        events = etl_arrivals(rng, 0.0, 2 * 86400.0, runs_per_day=2.0)
        for t, _ in events:
            hour = (t % 86400.0) / 3600.0
            assert hour < 6.0


class TestDrift:
    def test_epochs_monotone(self):
        rng = np.random.default_rng(0)
        sched = AnalyzeSchedule(14.0, 3.0, rng)
        assert sched.n_epochs >= 2
        epochs = [sched.epoch_at(t * 86400.0) for t in np.linspace(0, 13.9, 50)]
        assert all(b >= a for a, b in zip(epochs, epochs[1:]))

    def test_epoch_zero_starts_at_day_zero(self):
        sched = AnalyzeSchedule(10.0, 2.0, np.random.default_rng(1))
        assert sched.epoch_start_day(0) == 0.0
        assert sched.epoch_start_day(1) > 0.0

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            AnalyzeSchedule(10.0, 0.0, np.random.default_rng(0))

    def test_template_start_days(self):
        rng = np.random.default_rng(2)
        starts = sample_template_start_days(rng, 200, 10.0, late_fraction=0.3)
        assert (starts >= 0).all() and (starts <= 10.0).all()
        late = (starts > 0).mean()
        assert 0.15 < late < 0.45

    def test_zero_late_fraction(self):
        starts = sample_template_start_days(np.random.default_rng(3), 50, 10.0, late_fraction=0.0)
        assert (starts == 0).all()


class TestInputValidation:
    """Bad windows, durations and rates fail loudly, never silently."""

    def test_inverted_window_rejected_by_every_arrival_process(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError, match="t_end"):
            dashboard_arrivals(rng, 100.0, 100.0, period_s=60.0)
        with pytest.raises(ValueError, match="t_end"):
            report_arrivals(rng, 200.0, 100.0, runs_per_day=2.0)
        with pytest.raises(ValueError, match="t_end"):
            adhoc_arrivals(rng, 200.0, 100.0, mean_per_day=10.0)
        with pytest.raises(ValueError, match="t_end"):
            etl_arrivals(rng, 200.0, 100.0)
        with pytest.raises(ValueError, match="t_end"):
            burst_windows(rng, 200.0, 100.0, storms_per_week=1.0, duration_hours=1.0)

    def test_negative_rates_rejected(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError, match="runs_per_day"):
            report_arrivals(rng, 0.0, 86400.0, runs_per_day=-1.0)
        with pytest.raises(ValueError, match="mean_per_day"):
            adhoc_arrivals(rng, 0.0, 86400.0, mean_per_day=-5.0)
        with pytest.raises(ValueError, match="runs_per_day"):
            etl_arrivals(rng, 0.0, 86400.0, runs_per_day=-0.5)
        with pytest.raises(ValueError, match="storms_per_week"):
            burst_windows(rng, 0.0, 86400.0, storms_per_week=-1.0, duration_hours=1.0)
        with pytest.raises(ValueError, match="rate_per_day"):
            burst_arrivals(rng, [(0.0, 3600.0)], rate_per_day=-1.0)

    def test_dashboard_shape_knobs_validated(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError, match="n_variants"):
            dashboard_arrivals(rng, 0.0, 86400.0, period_s=60.0, n_variants=0)
        with pytest.raises(ValueError, match="jitter_frac"):
            dashboard_arrivals(rng, 0.0, 86400.0, period_s=60.0, jitter_frac=-0.1)

    def test_burst_arrivals_mode_and_pool_validated(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError, match="variant_mode"):
            burst_arrivals(rng, [(0.0, 3600.0)], 10.0, variant_mode="surge")
        with pytest.raises(ValueError, match="n_variants"):
            burst_arrivals(rng, [(0.0, 3600.0)], 10.0, variant_mode="pool", n_variants=0)

    def test_seasonal_thin_validated(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError, match="amplitude"):
            seasonal_thin(rng, [], amplitude=1.5, period_days=7.0)
        with pytest.raises(ValueError, match="period_days"):
            seasonal_thin(rng, [], amplitude=0.5, period_days=0.0)

    def test_seasonal_thin_rejects_unsorted_events(self):
        """Thinning consumes one RNG draw per event in iteration order,
        so an unsorted composition bug would silently reshuffle which
        events survive — it must fail loudly, naming the offender."""
        rng = np.random.default_rng(0)
        events = [(0.0, 1), (100.0, 2), (50.0, 3), (200.0, 4)]
        with pytest.raises(ValueError, match="event 2 arrives at 50.0 after 100.0"):
            seasonal_thin(rng, events, amplitude=0.5, period_days=7.0)
        # the check guards the amplitude=0 shortcut path too
        with pytest.raises(ValueError, match="event 2"):
            seasonal_thin(rng, events, amplitude=0.0, period_days=7.0)

    def test_seasonal_thin_accepts_ties_and_generators(self):
        """Equal timestamps are legal (simultaneous arrivals), and the
        events argument may be any iterable, not only a list."""
        rng = np.random.default_rng(0)
        events = [(0.0, 1), (10.0, 2), (10.0, 3), (20.0, 4)]
        kept = seasonal_thin(rng, iter(events), amplitude=0.0, period_days=7.0)
        assert kept == events

    def test_analyze_schedule_durations_validated(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError, match="duration_days"):
            AnalyzeSchedule(0.0, 3.0, rng)
        with pytest.raises(ValueError, match="duration_days"):
            AnalyzeSchedule(-1.0, 3.0, rng)

    def test_analyze_schedule_outage_windows_validated(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError, match="start"):
            AnalyzeSchedule(10.0, 3.0, rng, outages=[(-1.0, 2.0)])
        with pytest.raises(ValueError, match="end"):
            AnalyzeSchedule(10.0, 3.0, rng, outages=[(3.0, 3.0)])

    def test_template_start_days_validated(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError, match="n_templates"):
            sample_template_start_days(rng, -1, 10.0)
        with pytest.raises(ValueError, match="duration_days"):
            sample_template_start_days(rng, 5, 0.0)

    def test_outage_sampler_validated(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError, match="duration_days"):
            sample_outage_windows(rng, 0.0, 1.0, 1.0)
        with pytest.raises(ValueError, match="outages_per_week"):
            sample_outage_windows(rng, 10.0, -1.0, 1.0)
        with pytest.raises(ValueError, match="outage_days"):
            sample_outage_windows(rng, 10.0, 1.0, 0.0)

    def test_retirement_sampler_validated(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError, match="duration_days"):
            sample_template_retirements(rng, [0.0], 0.0, 1.0)
        with pytest.raises(ValueError, match="churn_rate_per_week"):
            sample_template_retirements(rng, [0.0], 10.0, -1.0)
        # rate 0 = nothing ever retires
        ends = sample_template_retirements(rng, [0.0, 2.0], 10.0, 0.0)
        assert np.isinf(ends).all()

    def test_resize_schedule_validated(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError, match="day"):
            ResizeSchedule([(-1.0, 2.0)])
        with pytest.raises(ValueError, match="factor"):
            ResizeSchedule([(1.0, 0.0)])
        with pytest.raises(ValueError, match="events_per_week"):
            ResizeSchedule.sample(rng, 10.0, -1.0, 0.5, 2.0)
        with pytest.raises(ValueError, match="factor_low"):
            ResizeSchedule.sample(rng, 10.0, 1.0, 2.0, 0.5)

    def test_resize_factors_compound_in_day_order(self):
        schedule = ResizeSchedule([(5.0, 2.0), (1.0, 0.5)])
        assert schedule.factor_at(0.0) == 1.0
        assert schedule.factor_at(2.0) == 0.5
        assert schedule.factor_at(6.0) == 1.0  # 0.5 * 2.0


class TestPlanGenerator:
    def _tables(self):
        return [
            Table("dim1", 1e5),
            Table("dim2", 5e5),
            Table("fact1", 1e8),
            Table("fact2", 5e8, s3_format="parquet"),
        ]

    def test_template_materializes_valid_plan(self):
        gen = PlanGenerator()
        rng = np.random.default_rng(0)
        for kind in QueryKind.ALL:
            spec = gen.build_template(rng, kind, self._tables())
            stat_rows = {i: t.base_rows for i, t in enumerate(self._tables())}
            mat = gen.materialize(spec, self._tables(), stat_rows)
            assert mat.plan.n_nodes >= 1
            assert mat.base_work > 0
            vec = featurize_plan(mat.plan)
            assert vec.shape == (33,)

    def test_same_spec_same_plan_features(self):
        gen = PlanGenerator()
        rng = np.random.default_rng(1)
        spec = gen.build_template(rng, QueryKind.REPORT, self._tables())
        stats = {i: t.base_rows for i, t in enumerate(self._tables())}
        v1 = featurize_plan(gen.materialize(spec, self._tables(), stats).plan)
        v2 = featurize_plan(gen.materialize(spec, self._tables(), stats).plan)
        np.testing.assert_array_equal(v1, v2)

    def test_variant_differs_from_base(self):
        gen = PlanGenerator()
        rng = np.random.default_rng(2)
        spec = gen.build_template(rng, QueryKind.ADHOC, self._tables())
        variant = gen.perturb_variant(np.random.default_rng(3), spec)
        stats = {i: t.base_rows for i, t in enumerate(self._tables())}
        v1 = featurize_plan(gen.materialize(spec, self._tables(), stats).plan)
        v2 = featurize_plan(gen.materialize(variant, self._tables(), stats).plan)
        assert not np.array_equal(v1, v2)

    def test_stale_stats_change_estimates_not_structure(self):
        gen = PlanGenerator()
        rng = np.random.default_rng(4)
        spec = gen.build_template(rng, QueryKind.REPORT, self._tables())
        stats_old = {i: t.base_rows for i, t in enumerate(self._tables())}
        stats_new = {i: r * 2 for i, r in stats_old.items()}
        m1 = gen.materialize(spec, self._tables(), stats_old)
        m2 = gen.materialize(spec, self._tables(), stats_new)
        assert m1.plan.n_nodes == m2.plan.n_nodes
        assert m1.plan.total_estimated_cost < m2.plan.total_estimated_cost


class TestCostModel:
    def test_exec_time_positive_and_bounded(self):
        cm = TrueCostModel()
        rng = np.random.default_rng(0)
        for work in (0.001, 1.0, 1e4, 1e9):
            t = cm.exec_time(work, 10.0, 100.0, rng, 0.3)
            assert 0 < t <= cm.params.max_exec_time

    def test_faster_cluster_faster_queries(self):
        cm = TrueCostModel()
        slow = np.median(
            [cm.exec_time(100.0, 2.0, 100.0, np.random.default_rng(i), 0.2) for i in range(50)]
        )
        fast = np.median(
            [cm.exec_time(100.0, 50.0, 100.0, np.random.default_rng(i), 0.2) for i in range(50)]
        )
        assert fast < slow

    def test_repeated_executions_vary(self):
        cm = TrueCostModel()
        rng = np.random.default_rng(1)
        times = [cm.exec_time(10.0, 10.0, 100.0, rng, 0.3) for _ in range(30)]
        assert np.std(times) > 0


class TestBuckets:
    def test_bucket_of(self):
        assert bucket_of(1.0) == "0s - 10s"
        assert bucket_of(30.0) == "10s - 60s"
        assert bucket_of(90.0) == "60s - 120s"
        assert bucket_of(200.0) == "120s - 300s"
        assert bucket_of(1e5) == "300s+"

    def test_bucket_counts_total(self):
        times = [0.1, 20.0, 70.0, 150.0, 400.0, 5.0]
        counts = bucket_counts(times)
        assert sum(counts.values()) == len(times)
        assert len(counts) == len(EXEC_TIME_BUCKETS)


class TestFleet:
    def test_instance_sampling_deterministic(self, small_fleet):
        gen, _ = small_fleet
        a = gen.sample_instance(3)
        b = gen.sample_instance(3)
        assert a.instance_id == b.instance_id
        assert a.latent_speed == b.latent_speed
        assert [t.base_rows for t in a.tables] == [t.base_rows for t in b.tables]

    def test_instance_fields_valid(self, small_fleet):
        gen, _ = small_fleet
        for i in range(8):
            inst = gen.sample_instance(i)
            assert inst.hardware.name in HARDWARE_CLASSES
            assert inst.effective_speed > 0
            assert 0.999 <= sum(inst.kind_weights.values()) <= 1.001

    def test_traces_time_ordered(self, small_fleet):
        _, traces = small_fleet
        for trace in traces:
            times = [r.arrival_time for r in trace]
            assert all(b >= a for a, b in zip(times, times[1:]))

    def test_repeated_queries_share_feature_vectors(self, small_fleet):
        _, traces = small_fleet
        shared = 0
        for trace in traces:
            by_identity = {}
            for r in trace:
                key = r.identity
                if key in by_identity:
                    assert by_identity[key] is r.features
                    shared += 1
                else:
                    by_identity[key] = r.features
        assert shared > 0  # the fleet does contain repeats

    def test_exec_times_positive(self, small_fleet):
        _, traces = small_fleet
        et = fleet_exec_times(traces)
        assert (et > 0).all()

    def test_fleet_has_repetition_structure(self, small_fleet):
        """Most clusters repeat queries; a minority never do (Fig 1a)."""
        _, traces = small_fleet
        fractions = fleet_unique_daily_fractions(traces)
        assert (fractions >= 0).all() and (fractions <= 1).all()
        assert fractions.min() < 0.5  # some heavy repeaters exist

    def test_trace_generation_deterministic(self):
        cfg = FleetConfig(seed=11, volume_scale=0.1)
        t1 = FleetGenerator(cfg).generate_fleet_traces(2, 1.0)
        t2 = FleetGenerator(cfg).generate_fleet_traces(2, 1.0)
        assert [len(a) for a in t1] == [len(b) for b in t2]
        for a, b in zip(t1, t2):
            for ra, rb in zip(a, b):
                assert ra.exec_time == rb.exec_time
                assert ra.arrival_time == rb.arrival_time

    def test_latency_spans_orders_of_magnitude(self, small_fleet):
        """Fig 1b: exec times range from milliseconds to minutes+."""
        _, traces = small_fleet
        et = fleet_exec_times(traces)
        assert et.min() < 0.1
        assert et.max() > 10.0

    def test_kind_mix_matches_weights_roughly(self, small_fleet):
        _, traces = small_fleet
        for trace in traces:
            mix = trace.kind_mix()
            w = trace.instance.kind_weights
            if w[QueryKind.DASHBOARD] > 0.5 and len(trace) > 200:
                assert mix.get(QueryKind.DASHBOARD, 0) > 0.3


class TestInstanceProfile:
    def _profile(self, **kwargs):
        defaults = dict(
            instance_id="i",
            hardware=HARDWARE_CLASSES["ra3.4xlarge"],
            n_nodes=4,
            latent_speed=1.0,
            load_sigma=0.2,
            tables=[Table("t", 1e6, growth_per_day=0.1)],
            kind_weights={QueryKind.ADHOC: 1.0},
            queries_per_day=100.0,
            seed=0,
        )
        defaults.update(kwargs)
        return InstanceProfile(**defaults)

    def test_invalid_weights_rejected(self):
        with pytest.raises(ValueError, match="sum to 1"):
            self._profile(kind_weights={QueryKind.ADHOC: 0.5})

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown query kind"):
            self._profile(kind_weights={"mystery": 1.0})

    def test_growth_factor_compounds(self):
        p = self._profile()
        assert p.growth_factor(0) == 1.0
        assert p.growth_factor(1) == pytest.approx(1.1)
        assert p.growth_factor(2) == pytest.approx(1.21)

    def test_system_features_exclude_latent_speed(self):
        a = self._profile(latent_speed=0.5)
        b = self._profile(latent_speed=2.0)
        np.testing.assert_array_equal(a.system_features(), b.system_features())

    def test_effective_speed_uses_latent(self):
        a = self._profile(latent_speed=0.5)
        b = self._profile(latent_speed=2.0)
        assert b.effective_speed == pytest.approx(4 * a.effective_speed)
