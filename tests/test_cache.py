"""Tests for the exec-time cache and Welford running stats."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import ExecTimeCache, RunningStats


class TestRunningStats:
    @given(
        st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
            min_size=1,
            max_size=60,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_numpy(self, values):
        stats = RunningStats()
        for v in values:
            stats.update(v)
        assert stats.count == len(values)
        assert stats.mean == pytest.approx(np.mean(values), rel=1e-9, abs=1e-6)
        assert stats.variance == pytest.approx(np.var(values), rel=1e-9, abs=1e-6)
        assert stats.last == values[-1]

    def test_single_value_zero_variance(self):
        stats = RunningStats().update(5.0)
        assert stats.variance == 0.0
        assert stats.sample_variance == 0.0

    def test_sample_variance_unbiased(self):
        stats = RunningStats()
        for v in (1.0, 2.0, 3.0):
            stats.update(v)
        assert stats.sample_variance == pytest.approx(1.0)

    def test_repr_contains_fields(self):
        assert "mean" in repr(RunningStats().update(1.0))


class TestExecTimeCacheBasics:
    def test_miss_returns_none(self):
        cache = ExecTimeCache(capacity=10)
        assert cache.lookup("nope") is None
        assert cache.misses == 1

    def test_hit_after_observe(self):
        cache = ExecTimeCache(capacity=10)
        cache.observe("q1", 2.0)
        assert cache.lookup("q1") == pytest.approx(2.0)
        assert cache.hits == 1

    def test_alpha_blend(self):
        """prediction = alpha * mean + (1 - alpha) * last (paper 4.2)."""
        cache = ExecTimeCache(capacity=10, alpha=0.8)
        for t in (1.0, 2.0, 6.0):
            cache.observe("q", t)
        expected = 0.8 * 3.0 + 0.2 * 6.0
        assert cache.lookup("q") == pytest.approx(expected)

    def test_alpha_zero_is_last_only(self):
        cache = ExecTimeCache(capacity=10, alpha=0.0)
        cache.observe("q", 1.0)
        cache.observe("q", 9.0)
        assert cache.lookup("q") == pytest.approx(9.0)

    def test_alpha_one_is_mean_only(self):
        cache = ExecTimeCache(capacity=10, alpha=1.0)
        cache.observe("q", 1.0)
        cache.observe("q", 9.0)
        assert cache.lookup("q") == pytest.approx(5.0)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            ExecTimeCache(capacity=0)
        with pytest.raises(ValueError):
            ExecTimeCache(alpha=1.5)
        with pytest.raises(ValueError):
            ExecTimeCache().observe("q", -1.0)

    def test_vector_roundtrip(self):
        cache = ExecTimeCache(capacity=10)
        vec = np.arange(33, dtype=float)
        key = cache.observe_vector(vec, 3.0)
        assert cache.predict(vec) == pytest.approx(3.0)
        assert key == cache.key_for(vec)


class TestEviction:
    def test_capacity_never_exceeded(self):
        cache = ExecTimeCache(capacity=5)
        for i in range(50):
            cache.observe(f"q{i}", float(i))
            assert len(cache) <= 5

    def test_least_recently_updated_evicted(self):
        cache = ExecTimeCache(capacity=2)
        cache.observe("a", 1.0)
        cache.observe("b", 2.0)
        cache.observe("a", 1.5)  # refresh a; b is now oldest
        cache.observe("c", 3.0)  # evicts b
        assert "a" in cache and "c" in cache and "b" not in cache

    def test_lookup_does_not_refresh(self):
        """Eviction is least-recently-*updated*: reads don't protect."""
        cache = ExecTimeCache(capacity=2)
        cache.observe("a", 1.0)
        cache.observe("b", 2.0)
        cache.lookup("a")  # read but not updated
        cache.observe("c", 3.0)  # evicts a despite the read
        assert "a" not in cache and "b" in cache and "c" in cache

    def test_eviction_counter(self):
        cache = ExecTimeCache(capacity=1)
        cache.observe("a", 1.0)
        cache.observe("b", 1.0)
        assert cache.evictions == 1

    @given(st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=200))
    @settings(max_examples=40, deadline=None)
    def test_capacity_invariant_under_any_sequence(self, keys):
        cache = ExecTimeCache(capacity=7)
        for k in keys:
            cache.observe(f"q{k}", float(k))
        assert len(cache) <= 7
        # entries seen most recently must be present
        recent_distinct = []
        for k in reversed(keys):
            if f"q{k}" not in recent_distinct:
                recent_distinct.append(f"q{k}")
            if len(recent_distinct) == min(7, len(set(keys))):
                break
        for key in recent_distinct:
            assert key in cache


class TestEWMAMode:
    """The time-series-style prediction mode (paper 4.2 future work)."""

    def test_single_observation_is_identity(self):
        cache = ExecTimeCache(capacity=4, mode="ewma")
        cache.observe("q", 7.0)
        assert cache.lookup("q") == pytest.approx(7.0)

    def test_ewma_weights_recent_history(self):
        cache = ExecTimeCache(capacity=4, mode="ewma", ewma_decay=0.5)
        for t in (1.0, 1.0, 9.0):
            cache.observe("q", t)
        # ewma: 1 -> 1 -> 0.5*1 + 0.5*9 = 5
        assert cache.lookup("q") == pytest.approx(5.0)

    def test_ewma_tracks_drift_better_than_mean(self):
        """Under a level shift, EWMA converges to the new level while the
        plain mean lags — the motivation for the future-work idea."""
        blend = ExecTimeCache(capacity=4, alpha=1.0)  # mean-only
        ewma = ExecTimeCache(capacity=4, mode="ewma", ewma_decay=0.4)
        history = [1.0] * 20 + [10.0] * 5
        for t in history:
            blend.observe("q", t)
            ewma.observe("q", t)
        assert abs(ewma.lookup("q") - 10.0) < abs(blend.lookup("q") - 10.0)

    def test_invalid_mode_and_decay(self):
        with pytest.raises(ValueError, match="mode"):
            ExecTimeCache(mode="arima")
        with pytest.raises(ValueError, match="ewma_decay"):
            ExecTimeCache(mode="ewma", ewma_decay=0.0)

    def test_running_stats_expose_ewma(self):
        from repro.cache import RunningStats

        stats = RunningStats()
        stats.update(2.0, ewma_decay=0.5)
        stats.update(4.0, ewma_decay=0.5)
        assert stats.ewma == pytest.approx(3.0)


class TestPeek:
    def test_peek_matches_lookup_value(self):
        cache = ExecTimeCache(capacity=4, alpha=0.8)
        cache.observe("a", 1.0)
        cache.observe("a", 3.0)
        assert cache.peek("a") == pytest.approx(cache.lookup("a"))

    def test_peek_does_not_touch_counters(self):
        cache = ExecTimeCache(capacity=4)
        cache.observe("a", 1.0)
        assert cache.peek("a") is not None
        assert cache.peek("missing") is None
        assert cache.hits == 0 and cache.misses == 0
        assert cache.hit_rate == 0.0

    def test_peek_does_not_change_eviction_order(self):
        cache = ExecTimeCache(capacity=2)
        cache.observe("a", 1.0)
        cache.observe("b", 2.0)
        cache.peek("a")  # must NOT refresh "a"
        cache.observe("c", 3.0)  # evicts least-recently-updated: "a"
        assert "a" not in cache and "b" in cache and "c" in cache

    def test_peek_respects_ewma_mode(self):
        cache = ExecTimeCache(capacity=4, mode="ewma", ewma_decay=0.5)
        cache.observe("a", 2.0)
        cache.observe("a", 4.0)
        assert cache.peek("a") == pytest.approx(3.0)


class TestCacheAccounting:
    def test_hit_rate(self):
        cache = ExecTimeCache(capacity=4)
        cache.observe("a", 1.0)
        cache.lookup("a")
        cache.lookup("zz")
        assert cache.hit_rate == pytest.approx(0.5)

    def test_byte_size_grows(self):
        cache = ExecTimeCache(capacity=100)
        before = cache.byte_size()
        cache.observe("a", 1.0)
        assert cache.byte_size() > before

    def test_clear_resets(self):
        cache = ExecTimeCache(capacity=4)
        cache.observe("a", 1.0)
        cache.lookup("a")
        cache.clear()
        assert len(cache) == 0 and cache.hits == 0 and cache.hit_rate == 0.0


class TestArchiveAndPrewarm:
    """The evicted-entry archive behind forecast pre-warming.

    ``archive_capacity > 0`` keeps evicted entries (stats + precomputed
    prediction) on the side; ``restore`` revives one at MRU position and
    ``touch`` refreshes a resident's recency — the two pre-warm verbs.
    Neither touches the hit/miss counters, so pre-warming is invisible
    in lookup accounting.
    """

    def test_default_drops_evictions(self):
        cache = ExecTimeCache(capacity=1)
        cache.observe("a", 1.0)
        cache.observe("b", 2.0)
        assert not cache.restore("a")

    def test_restore_revives_evicted_entry(self):
        cache = ExecTimeCache(capacity=1, alpha=1.0, archive_capacity=4)
        cache.observe("a", 1.0)
        cache.observe("a", 3.0)
        cache.observe("b", 2.0)  # evicts a into the archive
        assert "a" not in cache
        assert cache.restore("a")
        assert cache.restores == 1
        assert "a" in cache and "b" not in cache  # restore evicted b
        # the restored entry kept its full stats (mean of 1.0, 3.0)
        assert cache.peek("a") == pytest.approx(2.0)

    def test_restore_noop_when_resident_or_unknown(self):
        cache = ExecTimeCache(capacity=2, archive_capacity=4)
        cache.observe("a", 1.0)
        assert not cache.restore("a")  # already resident
        assert not cache.restore("zz")  # never seen
        assert cache.restores == 0

    def test_archive_capacity_bounded(self):
        cache = ExecTimeCache(capacity=1, archive_capacity=2)
        for i in range(6):
            cache.observe(f"q{i}", float(i))
        # only the two most recently evicted survive (q3, q4)
        assert not cache.restore("q0")
        assert cache.restore("q3")

    def test_fresh_observation_supersedes_archive(self):
        cache = ExecTimeCache(capacity=1, archive_capacity=4)
        cache.observe("a", 10.0)
        cache.observe("b", 2.0)  # archives a with mean 10
        cache.observe("a", 4.0)  # fresh stream: archived copy dropped
        cache.observe("b", 2.0)
        assert cache.restore("a")
        assert cache.peek("a") == pytest.approx(4.0)  # not 10.0 or 7.0

    def test_touch_protects_recency(self):
        cache = ExecTimeCache(capacity=2)
        cache.observe("a", 1.0)
        cache.observe("b", 2.0)
        assert cache.touch("a")  # a is now most recent
        cache.observe("c", 3.0)  # evicts b, not a
        assert "a" in cache and "b" not in cache

    def test_touch_misses_return_false(self):
        cache = ExecTimeCache(capacity=2)
        assert not cache.touch("zz")

    def test_prewarm_verbs_leave_counters_alone(self):
        cache = ExecTimeCache(capacity=1, archive_capacity=4)
        cache.observe("a", 1.0)
        cache.observe("b", 2.0)
        cache.touch("b")
        cache.restore("a")
        assert cache.hits == 0 and cache.misses == 0

    def test_byte_size_counts_archive(self):
        dropping = ExecTimeCache(capacity=1)
        keeping = ExecTimeCache(capacity=1, archive_capacity=8)
        for cache in (dropping, keeping):
            for i in range(5):
                cache.observe(f"q{i}", float(i))
        assert keeping.byte_size() > dropping.byte_size()

    def test_clear_drops_archive(self):
        cache = ExecTimeCache(capacity=1, archive_capacity=4)
        cache.observe("a", 1.0)
        cache.observe("b", 2.0)
        cache.restore("a")
        cache.clear()
        assert cache.restores == 0
        assert not cache.restore("a")

    def test_invalid_archive_capacity(self):
        with pytest.raises(ValueError):
            ExecTimeCache(capacity=4, archive_capacity=-1)
