"""Determinism/parity suite for the sharded global-model trainer.

The trainer's contract mirrors the fleet sweeper's: any ``n_jobs`` (and
therefore any shard assignment) must produce a **bit-identical** dataset,
scaler moments, and trained model, and the dataset drawn from each trace
must not depend on where that trace sits in the input ordering.  The two
invariants under test:

- per-trace subsampling is seeded from ``(random_state, instance id)``
  alone (the regression here: it used to be seeded from the running
  graph count, so any reordering or sharding changed the sample);
- scaler moments are computed per trace and merged in trace order, so
  the reduction never sees shard boundaries.
"""

import numpy as np
import pytest

from repro.core.config import GlobalModelConfig
from repro.global_model import GlobalModelTrainer
from repro.global_model.trainer import subsample_trace
from repro.ml.preprocessing import RunningMoments
from repro.workload import FleetConfig, FleetGenerator

#: five traces so that 2 and 3 shards both split unevenly
N_TRACES = 5

TRAINER_CONFIG = GlobalModelConfig(
    hidden_dim=16,
    n_conv_layers=2,
    epochs=3,
    max_queries_per_instance=60,
)


def assert_graphs_identical(a, b):
    assert len(a) == len(b)
    for x, y in zip(a, b):
        assert np.array_equal(x.node_features, y.node_features)
        assert np.array_equal(x.sys_features, y.sys_features)
        assert np.array_equal(x.edges, y.edges)
        assert x.root == y.root


@pytest.fixture(scope="module")
def traces():
    gen = FleetGenerator(FleetConfig(seed=3, volume_scale=0.1))
    return gen.generate_fleet_traces(N_TRACES, 1.0, start_index=100)


@pytest.fixture(scope="module")
def trainer():
    return GlobalModelTrainer(TRAINER_CONFIG)


@pytest.fixture(scope="module")
def sequential_dataset(trainer, traces):
    return trainer.build_dataset(traces, n_jobs=1)


@pytest.fixture(scope="module")
def sequential_model(trainer, traces):
    return trainer.train(traces, n_jobs=1)


class TestRunningMoments:
    def test_matches_numpy_on_one_batch(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(40, 3))
        m = RunningMoments(3).update(X)
        np.testing.assert_allclose(m.mean, X.mean(axis=0))
        np.testing.assert_allclose(m.std, X.std(axis=0))

    def test_merge_matches_concatenation(self):
        rng = np.random.default_rng(1)
        X, Y = rng.normal(size=(30, 4)), rng.normal(size=(17, 4))
        merged = RunningMoments(4).update(X).merge(RunningMoments(4).update(Y))
        both = np.vstack([X, Y])
        assert merged.count == 47
        np.testing.assert_allclose(merged.mean, both.mean(axis=0))
        np.testing.assert_allclose(merged.variance, both.var(axis=0))

    def test_premerged_grouping_is_equivalent_but_not_bit_guaranteed(self):
        """Floating-point merging is not associative: pre-merging a
        shard's batches before the final reduction (what a worker would
        do if it reduced its shard before returning) is mathematically
        equivalent but has no bitwise guarantee — on this platform it
        differs at the ulp level.  That is why workers return
        *per-trace* moments and the parent owns the merge order; the
        bitwise enforcement lives in ``TestShardedParity`` and
        ``test_worker_returns_are_split_invariant``, which exercise the
        real protocol."""
        rng = np.random.default_rng(2)
        batches = [rng.normal(size=(n, 2)) for n in (7, 12, 3, 9)]
        per_batch = [RunningMoments(2).update(b) for b in batches]

        flat = RunningMoments(2)
        for m in per_batch:
            flat.merge(m)
        # shard [0,1] and shard [2,3], each pre-merged, then combined
        head = RunningMoments(2).merge(per_batch[0]).merge(per_batch[1])
        tail = RunningMoments(2).merge(per_batch[2]).merge(per_batch[3])
        grouped = head.merge(tail)
        assert flat.count == grouped.count == sum(len(b) for b in batches)
        np.testing.assert_allclose(flat.mean, grouped.mean)
        np.testing.assert_allclose(flat.m2, grouped.m2)

    def test_worker_returns_are_split_invariant(self, traces, trainer):
        """The actual worker protocol: per-trace tuples from any shard
        split, merged in trace order by the parent, give bitwise
        identical scaler moments."""
        from repro.global_model.trainer import _featurize_shard_worker
        from repro.plans.graph import NODE_FEATURE_DIM

        def moments_via(splits):
            per_trace = []
            for lo, hi in splits:
                per_trace.extend(_featurize_shard_worker((traces[lo:hi], trainer.config, True)))
            merged = RunningMoments(NODE_FEATURE_DIM)
            for _, __, node_m, ___ in per_trace:
                merged.merge(node_m)
            return merged

        uneven = moments_via([(0, 2), (2, 5)])
        lopsided = moments_via([(0, 4), (4, 5)])
        assert uneven.count == lopsided.count
        assert np.array_equal(uneven.mean, lopsided.mean)
        assert np.array_equal(uneven.m2, lopsided.m2)

    def test_empty_and_zero_guards(self):
        m = RunningMoments(2)
        assert np.array_equal(m.variance, np.zeros(2))
        m.update(np.zeros((0, 2)))
        assert m.count == 0
        with pytest.raises(ValueError):
            m.update(np.zeros((4, 3)))


class TestSubsampleSeeding:
    def test_sample_independent_of_trace_position(self, trainer, traces):
        """The regression: each trace must draw the same subsample no
        matter what precedes it in the input ordering."""
        per_trace = {t.instance.instance_id: subsample_trace(t, trainer.config) for t in traces}
        for order in ([4, 1, 3, 0, 2], [2, 3, 0, 4, 1]):
            for trace in (traces[i] for i in order):
                again = subsample_trace(trace, trainer.config)
                expected = per_trace[trace.instance.instance_id]
                assert [r.query_id for r in again] == [r.query_id for r in expected]

    def test_permuted_traces_build_same_dataset(self, trainer, traces, sequential_dataset):
        """Trace-order permutation permutes whole per-trace blocks but
        changes nothing inside them: the permuted dataset equals the
        concatenation of each trace's individually built dataset."""
        order = [3, 0, 4, 1, 2]
        permuted = [traces[i] for i in order]
        graphs_p, targets_p = trainer.build_dataset(permuted, n_jobs=1)

        blocks = [trainer.build_dataset([t], n_jobs=1) for t in traces]
        expected_graphs = [g for i in order for g in blocks[i][0]]
        expected_targets = np.concatenate([blocks[i][1] for i in order])
        assert_graphs_identical(graphs_p, expected_graphs)
        assert np.array_equal(targets_p, expected_targets)

        # and the original order concatenates the same blocks
        graphs_s, targets_s = sequential_dataset
        assert_graphs_identical(graphs_s, [g for b in blocks for g in b[0]])
        assert np.array_equal(targets_s, np.concatenate([b[1] for b in blocks]))

    def test_cap_still_enforced(self, trainer, traces):
        cfg = GlobalModelConfig(max_queries_per_instance=15)
        for trace in traces:
            assert len(subsample_trace(trace, cfg)) <= 15


@pytest.mark.parametrize("n_jobs", [2, 3])
class TestShardedParity:
    def test_build_dataset_bit_identical(self, trainer, traces, sequential_dataset, n_jobs):
        graphs_s, targets_s = sequential_dataset
        graphs_p, targets_p = trainer.build_dataset(traces, n_jobs=n_jobs)
        assert_graphs_identical(graphs_s, graphs_p)
        assert np.array_equal(targets_s, targets_p)

    def test_scaler_moments_bit_identical(self, trainer, traces, sequential_model, n_jobs):
        parallel = trainer.train(traces, n_jobs=n_jobs)
        for attr in ("node_scaler", "sys_scaler"):
            seq_scaler = getattr(sequential_model, attr)
            par_scaler = getattr(parallel, attr)
            assert np.array_equal(seq_scaler.mean_, par_scaler.mean_)
            assert np.array_equal(seq_scaler.scale_, par_scaler.scale_)

    def test_model_predictions_bit_identical(
        self, trainer, traces, sequential_model, sequential_dataset, n_jobs
    ):
        parallel = trainer.train(traces, n_jobs=n_jobs)
        probe = sequential_dataset[0][:40]
        assert np.array_equal(
            sequential_model.predict_graphs(probe),
            parallel.predict_graphs(probe),
        )


class TestTrainKnobs:
    def test_config_n_jobs_is_the_default(self, traces, sequential_dataset):
        """``n_jobs=None`` defers to ``GlobalModelConfig.n_jobs``."""
        from dataclasses import replace

        cfg = replace(TRAINER_CONFIG, n_jobs=2)
        graphs, targets = GlobalModelTrainer(cfg).build_dataset(traces)
        graphs_s, targets_s = sequential_dataset
        assert_graphs_identical(graphs, graphs_s)
        assert np.array_equal(targets, targets_s)

    def test_single_trace_runs_inline(self, trainer, traces):
        """One task never pays for a pool, whatever n_jobs says."""
        graphs, targets = trainer.build_dataset([traces[0]], n_jobs=4)
        block_graphs, block_targets = trainer.build_dataset([traces[0]], n_jobs=1)
        assert_graphs_identical(graphs, block_graphs)
        assert np.array_equal(targets, block_targets)

    def test_empty_traces_still_raise(self, trainer):
        with pytest.raises(ValueError, match="empty traces"):
            trainer.train([], n_jobs=2)
