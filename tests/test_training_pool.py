"""Tests for the local model's training pool (bounding/dedup/bucketing)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import TrainingPoolConfig
from repro.local_model import TrainingPool


def _vec(i):
    return np.full(4, float(i))


class TestBasics:
    def test_add_and_dataset(self):
        pool = TrainingPool(TrainingPoolConfig(max_size=10))
        pool.add(_vec(1), 1.0)
        pool.add(_vec(2), 20.0)
        X, y = pool.dataset()
        assert X.shape == (2, 4)
        assert set(y) == {1.0, 20.0}

    def test_empty_dataset(self):
        X, y = TrainingPool().dataset()
        assert X.shape[0] == 0 and y.shape[0] == 0

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            TrainingPool(TrainingPoolConfig(max_size=0))
        with pytest.raises(ValueError, match="sum to 1"):
            TrainingPool(TrainingPoolConfig(bucket_shares=((10.0, 0.5), (float("inf"), 0.2))))

    def test_negative_exec_time_rejected(self):
        with pytest.raises(ValueError):
            TrainingPool().add(_vec(0), -1.0)


class TestDeduplication:
    def test_cache_hits_are_skipped(self):
        """Paper 4.3: queries the cache already knows never enter the pool."""
        pool = TrainingPool(TrainingPoolConfig(max_size=10))
        assert pool.add(_vec(0), 1.0, cache_hit=True) is False
        assert len(pool) == 0
        assert pool.skipped_duplicates == 1

    def test_cache_misses_are_added(self):
        pool = TrainingPool(TrainingPoolConfig(max_size=10))
        assert pool.add(_vec(0), 1.0, cache_hit=False) is True
        assert len(pool) == 1


class TestBucketing:
    def test_bucket_routing(self):
        pool = TrainingPool(TrainingPoolConfig(max_size=100))
        pool.add(_vec(0), 1.0)     # 0-10s
        pool.add(_vec(1), 30.0)    # 10-60s
        pool.add(_vec(2), 500.0)   # 60s+
        assert pool.bucket_sizes() == [1, 1, 1]

    def test_short_queries_cannot_evict_long(self):
        """Duration diversity (paper 4.3): the flood of short queries must
        not displace the rare long ones."""
        pool = TrainingPool(TrainingPoolConfig(max_size=20))
        pool.add(_vec(0), 100.0)  # one long query
        for i in range(200):
            pool.add(_vec(i), 0.5)  # flood of short queries
        X, y = pool.dataset()
        assert 100.0 in y

    def test_bucket_caps_respected(self):
        cfg = TrainingPoolConfig(
            max_size=10, bucket_shares=((10.0, 0.5), (60.0, 0.3), (float("inf"), 0.2))
        )
        pool = TrainingPool(cfg)
        for i in range(50):
            pool.add(_vec(i), 1.0)
        for i in range(50):
            pool.add(_vec(i), 30.0)
        sizes = pool.bucket_sizes()
        caps = pool.bucket_caps()
        assert all(s <= c for s, c in zip(sizes, caps))
        assert sum(caps) == 10

    def test_within_bucket_fifo_eviction(self):
        cfg = TrainingPoolConfig(
            max_size=4, bucket_shares=((float("inf"), 1.0),)
        )
        pool = TrainingPool(cfg)
        for i in range(10):
            pool.add(_vec(i), float(i))
        _, y = pool.dataset()
        assert list(y) == [6.0, 7.0, 8.0, 9.0]

    @given(
        st.lists(
            st.floats(min_value=0, max_value=1000, allow_nan=False),
            min_size=1,
            max_size=300,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_size_never_exceeds_max(self, times):
        pool = TrainingPool(TrainingPoolConfig(max_size=25))
        for i, t in enumerate(times):
            pool.add(_vec(i), t)
        assert len(pool) <= 25
