"""Error-path coverage for :class:`repro.service.ModelRegistry`.

Every load failure must be self-describing: a missing artifact raises
``FileNotFoundError`` naming the snapshot and listing what the registry
actually holds, and corrupt/truncated on-disk state raises ``ValueError``
— never a bare internal-path ``FileNotFoundError`` or a raw pickle
traceback.
"""

import os

import numpy as np
import pytest

from repro.core.config import fast_profile
from repro.core.stage import StagePredictor
from repro.global_model.featurization import SYS_FEATURE_DIM
from repro.global_model.model import GlobalModel
from repro.ml.gcn import DirectedGCN
from repro.ml.preprocessing import StandardScaler
from repro.plans.graph import NODE_FEATURE_DIM
from repro.service import ModelRegistry
from repro.workload import FleetConfig, FleetGenerator


@pytest.fixture()
def registry(tmp_path):
    return ModelRegistry(str(tmp_path / "registry"))


@pytest.fixture(scope="module")
def instance():
    gen = FleetGenerator(FleetConfig(seed=5, volume_scale=0.1))
    return gen.sample_instance(0)


def _tiny_global_model() -> GlobalModel:
    """A structurally valid (untrained) global model — enough to serialize."""
    gcn = DirectedGCN(
        n_node_features=NODE_FEATURE_DIM,
        n_sys_features=SYS_FEATURE_DIM,
        hidden_dim=8,
        n_conv_layers=2,
        dropout=0.0,
        random_state=0,
    )
    node_scaler = StandardScaler()
    node_scaler.mean_ = np.zeros(NODE_FEATURE_DIM)
    node_scaler.scale_ = np.ones(NODE_FEATURE_DIM)
    sys_scaler = StandardScaler()
    sys_scaler.mean_ = np.zeros(SYS_FEATURE_DIM)
    sys_scaler.scale_ = np.ones(SYS_FEATURE_DIM)
    return GlobalModel(gcn, node_scaler, sys_scaler, residual_variance=0.25)


class TestMissingArtifacts:
    def test_missing_service_snapshot_names_it(self, registry):
        with pytest.raises(FileNotFoundError, match="no service snapshot named 'nope'"):
            registry.load_service_state("nope")

    def test_missing_snapshot_lists_available(self, registry, instance):
        stage = StagePredictor(instance, config=fast_profile())
        registry.save_service_state(stage, "existing")
        with pytest.raises(FileNotFoundError, match="'existing'"):
            registry.load_service_state("nope")

    def test_missing_global_model(self, registry):
        with pytest.raises(FileNotFoundError, match="no global model named 'ghost'"):
            registry.load_global_model("ghost")

    def test_missing_fleet_snapshot(self, registry):
        with pytest.raises(FileNotFoundError, match="no fleet snapshot named 'ghost'"):
            registry.load_fleet_manifest("ghost")

    def test_missing_fleet_member_lists_available(self, registry, instance):
        stage = StagePredictor(instance, config=fast_profile())
        registry.save_fleet_member(stage, "fleet-a")
        registry.save_fleet_manifest("fleet-a", [instance.instance_id], n_shards=1)
        with pytest.raises(FileNotFoundError) as excinfo:
            registry.load_fleet_member("fleet-a", "no-such-instance")
        assert instance.instance_id in str(excinfo.value)

    def test_missing_fleet_global(self, registry):
        with pytest.raises(FileNotFoundError, match="fleet snapshot global model"):
            registry.load_fleet_global("ghost")


class TestCorruptArtifacts:
    def test_truncated_state_pickle(self, registry, instance):
        stage = StagePredictor(instance, config=fast_profile())
        path = registry.save_service_state(stage, "snap")
        state_path = os.path.join(path, "state.pkl")
        data = open(state_path, "rb").read()
        with open(state_path, "wb") as f:
            f.write(data[: len(data) // 2])
        with pytest.raises(ValueError, match="corrupt or truncated"):
            registry.load_service_state("snap")

    def test_truncated_global_npz(self, registry):
        path = registry.save_global_model(_tiny_global_model(), "tiny")
        data = open(path, "rb").read()
        with open(path, "wb") as f:
            f.write(data[: len(data) // 2])
        with pytest.raises(ValueError, match="corrupt or truncated"):
            registry.load_global_model("tiny")

    def test_garbage_state_pickle(self, registry, instance):
        stage = StagePredictor(instance, config=fast_profile())
        path = registry.save_service_state(stage, "snap")
        with open(os.path.join(path, "state.pkl"), "wb") as f:
            f.write(b"this is not a pickle")
        with pytest.raises(ValueError, match="corrupt or truncated"):
            registry.load_service_state("snap")

    def test_corrupt_fleet_manifest_json(self, registry, instance):
        stage = StagePredictor(instance, config=fast_profile())
        registry.save_fleet_member(stage, "fleet-b")
        registry.save_fleet_manifest("fleet-b", [instance.instance_id], n_shards=1)
        manifest_path = os.path.join(registry.fleet_snapshot_path("fleet-b"), "fleet.json")
        with open(manifest_path, "w") as f:
            f.write("{ not json")
        with pytest.raises(ValueError, match="corrupt manifest"):
            registry.load_fleet_manifest("fleet-b")

    def test_truncated_fleet_member_pickle(self, registry, instance):
        stage = StagePredictor(instance, config=fast_profile())
        path = registry.save_fleet_member(stage, "fleet-c")
        registry.save_fleet_manifest("fleet-c", [instance.instance_id], n_shards=1)
        state_path = os.path.join(path, "state.pkl")
        data = open(state_path, "rb").read()
        with open(state_path, "wb") as f:
            f.write(data[: len(data) // 2])
        with pytest.raises(ValueError, match="corrupt or truncated"):
            registry.load_fleet_member("fleet-c", instance.instance_id)


class TestHappyPathStillWorks:
    def test_global_model_roundtrip_keeps_residual_variance(self, registry):
        registry.save_global_model(_tiny_global_model(), "tiny")
        loaded = registry.load_global_model("tiny")
        assert loaded.residual_variance == 0.25

    def test_service_state_roundtrip_keeps_width_bins(self, registry, instance):
        stage = StagePredictor(instance, config=fast_profile())
        stage.interval_width_bins[3] = 7
        registry.save_service_state(stage, "snap")
        loaded, _ = registry.load_service_state("snap")
        assert loaded.interval_width_bins == stage.interval_width_bins


# ---------------------------------------------------------------------------
# standalone per-instance states (the live-migration handoff unit)
# ---------------------------------------------------------------------------
def _replay_segment(stage, trace, start, stop):
    """Fused predict+observe over ``trace[start:stop)``; returns the
    predictions (observes included so post-restore retrains fire too)."""
    predictions = []
    for i in range(start, stop):
        predictions.append(stage.predict(trace[i]).exec_time)
        stage.observe(trace[i])
    return np.array(predictions)


def _instance_trace():
    gen = FleetGenerator(FleetConfig(seed=5, volume_scale=0.1))
    instance = gen.sample_instance(0)
    return instance, gen.generate_trace(instance, 0.7)


def _load_instance_state_and_predict(args):
    """Spawn-able worker: load one instance state cold and serve the
    held-out segment — no fleet manifest, no warm process state."""
    import pickle as _pickle

    registry_root, name, n_warm = args
    _, trace = _instance_trace()
    stage = ModelRegistry(registry_root).load_instance_state(name)
    return _pickle.dumps(_replay_segment(stage, trace, n_warm, len(trace)))


class TestInstanceStates:
    def test_roundtrip_is_bit_identical(self, registry):
        """Saving one instance mid-stream and restoring it continues the
        stream bit-for-bit — the property live migration rests on."""
        instance, trace = _instance_trace()
        n_warm = len(trace) // 2
        stage = StagePredictor(instance, config=fast_profile(), random_state=0)
        _replay_segment(stage, trace, 0, n_warm)
        registry.save_instance_state(stage, "mid-stream")
        assert registry.list_instance_states() == ["mid-stream"]

        want = _replay_segment(stage, trace, n_warm, len(trace))
        restored = registry.load_instance_state("mid-stream")
        got = _replay_segment(restored, trace, n_warm, len(trace))
        assert np.array_equal(got, want)

    def test_fresh_spawn_process_restore(self, registry):
        """The handoff unit survives a cold process boundary (spawn: no
        inherited memory), exactly as a target shard receives it."""
        import multiprocessing
        import pickle
        from concurrent.futures import ProcessPoolExecutor

        instance, trace = _instance_trace()
        n_warm = len(trace) // 2
        stage = StagePredictor(instance, config=fast_profile(), random_state=0)
        _replay_segment(stage, trace, 0, n_warm)
        registry.save_instance_state(stage, "handoff")
        want = _replay_segment(stage, trace, n_warm, len(trace))

        ctx = multiprocessing.get_context("spawn")
        with ProcessPoolExecutor(max_workers=1, mp_context=ctx) as pool:
            payload = pool.submit(
                _load_instance_state_and_predict, (registry.root, "handoff", n_warm)
            ).result(timeout=300)
        assert np.array_equal(pickle.loads(payload), want)

    def test_independent_of_fleet_snapshots(self, registry, instance):
        """Instance states live beside — never inside — fleet snapshots:
        neither listing sees the other's artifacts."""
        stage = StagePredictor(instance, config=fast_profile())
        registry.save_instance_state(stage, "solo")
        assert registry.list_fleet_snapshots() == []
        registry.save_fleet_member(stage, "fleet-x")
        registry.save_fleet_manifest("fleet-x", [instance.instance_id], n_shards=1)
        assert registry.list_instance_states() == ["solo"]

    def test_missing_instance_state_lists_available(self, registry, instance):
        stage = StagePredictor(instance, config=fast_profile())
        registry.save_instance_state(stage, "only-one")
        with pytest.raises(FileNotFoundError, match="no instance state named 'nope'"):
            registry.load_instance_state("nope")
