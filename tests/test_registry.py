"""Error-path coverage for :class:`repro.service.ModelRegistry`.

Every load failure must be self-describing: a missing artifact raises
``FileNotFoundError`` naming the snapshot and listing what the registry
actually holds, and corrupt/truncated on-disk state raises ``ValueError``
— never a bare internal-path ``FileNotFoundError`` or a raw pickle
traceback.
"""

import os

import numpy as np
import pytest

from repro.core.config import fast_profile
from repro.core.stage import StagePredictor
from repro.global_model.featurization import SYS_FEATURE_DIM
from repro.global_model.model import GlobalModel
from repro.ml.gcn import DirectedGCN
from repro.ml.preprocessing import StandardScaler
from repro.plans.graph import NODE_FEATURE_DIM
from repro.service import ModelRegistry
from repro.workload import FleetConfig, FleetGenerator


@pytest.fixture()
def registry(tmp_path):
    return ModelRegistry(str(tmp_path / "registry"))


@pytest.fixture(scope="module")
def instance():
    gen = FleetGenerator(FleetConfig(seed=5, volume_scale=0.1))
    return gen.sample_instance(0)


def _tiny_global_model() -> GlobalModel:
    """A structurally valid (untrained) global model — enough to serialize."""
    gcn = DirectedGCN(
        n_node_features=NODE_FEATURE_DIM,
        n_sys_features=SYS_FEATURE_DIM,
        hidden_dim=8,
        n_conv_layers=2,
        dropout=0.0,
        random_state=0,
    )
    node_scaler = StandardScaler()
    node_scaler.mean_ = np.zeros(NODE_FEATURE_DIM)
    node_scaler.scale_ = np.ones(NODE_FEATURE_DIM)
    sys_scaler = StandardScaler()
    sys_scaler.mean_ = np.zeros(SYS_FEATURE_DIM)
    sys_scaler.scale_ = np.ones(SYS_FEATURE_DIM)
    return GlobalModel(gcn, node_scaler, sys_scaler, residual_variance=0.25)


class TestMissingArtifacts:
    def test_missing_service_snapshot_names_it(self, registry):
        with pytest.raises(FileNotFoundError, match="no service snapshot named 'nope'"):
            registry.load_service_state("nope")

    def test_missing_snapshot_lists_available(self, registry, instance):
        stage = StagePredictor(instance, config=fast_profile())
        registry.save_service_state(stage, "existing")
        with pytest.raises(FileNotFoundError, match="'existing'"):
            registry.load_service_state("nope")

    def test_missing_global_model(self, registry):
        with pytest.raises(FileNotFoundError, match="no global model named 'ghost'"):
            registry.load_global_model("ghost")

    def test_missing_fleet_snapshot(self, registry):
        with pytest.raises(FileNotFoundError, match="no fleet snapshot named 'ghost'"):
            registry.load_fleet_manifest("ghost")

    def test_missing_fleet_member_lists_available(self, registry, instance):
        stage = StagePredictor(instance, config=fast_profile())
        registry.save_fleet_member(stage, "fleet-a")
        registry.save_fleet_manifest("fleet-a", [instance.instance_id], n_shards=1)
        with pytest.raises(FileNotFoundError) as excinfo:
            registry.load_fleet_member("fleet-a", "no-such-instance")
        assert instance.instance_id in str(excinfo.value)

    def test_missing_fleet_global(self, registry):
        with pytest.raises(FileNotFoundError, match="fleet snapshot global model"):
            registry.load_fleet_global("ghost")


class TestCorruptArtifacts:
    def test_truncated_state_pickle(self, registry, instance):
        stage = StagePredictor(instance, config=fast_profile())
        path = registry.save_service_state(stage, "snap")
        state_path = os.path.join(path, "state.pkl")
        data = open(state_path, "rb").read()
        with open(state_path, "wb") as f:
            f.write(data[: len(data) // 2])
        with pytest.raises(ValueError, match="corrupt or truncated"):
            registry.load_service_state("snap")

    def test_truncated_global_npz(self, registry):
        path = registry.save_global_model(_tiny_global_model(), "tiny")
        data = open(path, "rb").read()
        with open(path, "wb") as f:
            f.write(data[: len(data) // 2])
        with pytest.raises(ValueError, match="corrupt or truncated"):
            registry.load_global_model("tiny")

    def test_garbage_state_pickle(self, registry, instance):
        stage = StagePredictor(instance, config=fast_profile())
        path = registry.save_service_state(stage, "snap")
        with open(os.path.join(path, "state.pkl"), "wb") as f:
            f.write(b"this is not a pickle")
        with pytest.raises(ValueError, match="corrupt or truncated"):
            registry.load_service_state("snap")

    def test_corrupt_fleet_manifest_json(self, registry, instance):
        stage = StagePredictor(instance, config=fast_profile())
        registry.save_fleet_member(stage, "fleet-b")
        registry.save_fleet_manifest("fleet-b", [instance.instance_id], n_shards=1)
        manifest_path = os.path.join(registry.fleet_snapshot_path("fleet-b"), "fleet.json")
        with open(manifest_path, "w") as f:
            f.write("{ not json")
        with pytest.raises(ValueError, match="corrupt manifest"):
            registry.load_fleet_manifest("fleet-b")

    def test_truncated_fleet_member_pickle(self, registry, instance):
        stage = StagePredictor(instance, config=fast_profile())
        path = registry.save_fleet_member(stage, "fleet-c")
        registry.save_fleet_manifest("fleet-c", [instance.instance_id], n_shards=1)
        state_path = os.path.join(path, "state.pkl")
        data = open(state_path, "rb").read()
        with open(state_path, "wb") as f:
            f.write(data[: len(data) // 2])
        with pytest.raises(ValueError, match="corrupt or truncated"):
            registry.load_fleet_member("fleet-c", instance.instance_id)


class TestHappyPathStillWorks:
    def test_global_model_roundtrip_keeps_residual_variance(self, registry):
        registry.save_global_model(_tiny_global_model(), "tiny")
        loaded = registry.load_global_model("tiny")
        assert loaded.residual_variance == 0.25

    def test_service_state_roundtrip_keeps_width_bins(self, registry, instance):
        stage = StagePredictor(instance, config=fast_profile())
        stage.interval_width_bins[3] = 7
        registry.save_service_state(stage, "snap")
        loaded, _ = registry.load_service_state("snap")
        assert loaded.interval_width_bins == stage.interval_width_bins
