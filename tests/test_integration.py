"""Cross-module integration tests: the full pipeline end to end."""

import dataclasses

import numpy as np
import pytest

from repro import (
    AutoWLMPredictor,
    FleetConfig,
    FleetGenerator,
    OptimalPredictor,
    StagePredictor,
    fast_profile,
)
from repro.core.interfaces import PredictionSource, RunningMedian
from repro.core.metrics import summarize_errors
from repro.wlm import WLMConfig, simulate_wlm


@pytest.fixture(scope="module")
def generator():
    return FleetGenerator(FleetConfig(seed=101, volume_scale=0.3))


class TestRunningMedian:
    def test_first_value_adopted(self):
        m = RunningMedian()
        m.update(5.0)
        assert m.value == 5.0

    def test_converges_towards_median(self):
        rng = np.random.default_rng(0)
        m = RunningMedian()
        for x in rng.lognormal(0, 1, 4000):
            m.update(x)
        assert 0.3 < m.value < 3.0  # true median is 1.0


class TestStatisticsEpochs:
    def test_analyze_changes_feature_vectors(self, generator):
        """After an ANALYZE the same template/variant re-plans with new
        estimates, so its feature vector (and cache key) changes."""
        instance = generator.sample_instance(0)
        trace = generator.generate_trace(instance, 6.0)
        by_tv = {}
        found_epoch_change = False
        for r in trace:
            key = (r.template_id, r.variant_id)
            if key in by_tv:
                prev_epoch, prev_features = by_tv[key]
                if r.plan_epoch != prev_epoch:
                    found_epoch_change = True
                    assert not np.array_equal(prev_features, r.features)
            by_tv[key] = (r.plan_epoch, r.features)
        assert found_epoch_change

    def test_same_epoch_same_features(self, generator):
        instance = generator.sample_instance(0)
        trace = generator.generate_trace(instance, 2.0)
        seen = {}
        repeats_checked = 0
        for r in trace:
            key = r.identity
            if key in seen:
                np.testing.assert_array_equal(seen[key], r.features)
                repeats_checked += 1
            seen[key] = r.features
        assert repeats_checked > 0


class TestFullPipeline:
    def test_stage_beats_autowlm_on_repetitive_instance(self, generator):
        """The core claim at module scale: on a repetition-heavy instance
        the Stage hierarchy out-predicts the single-model baseline."""
        trace = None
        for i in range(10):
            inst = generator.sample_instance(i)
            if inst.kind_weights.get("dashboard", 0) >= 0.45:
                candidate = generator.generate_trace(inst, 2.0)
                if len(candidate) > 400:
                    trace = candidate
                    break
        assert trace is not None

        stage = StagePredictor(trace.instance, config=fast_profile())
        auto = AutoWLMPredictor(config=fast_profile().local)
        s_pred, a_pred, true = [], [], []
        for r in trace:
            s_pred.append(stage.predict(r).exec_time)
            a_pred.append(auto.predict(r).exec_time)
            stage.observe(r)
            auto.observe(r)
            true.append(r.exec_time)
        s = summarize_errors(true, s_pred)
        a = summarize_errors(true, a_pred)
        assert s.p50 <= a.p50
        assert s.mean <= a.mean * 1.2

    def test_wlm_prefers_better_predictions(self, generator):
        """Feeding WLM the oracle's predictions can't be (much) worse
        than feeding it a constant."""
        trace = generator.generate_trace(generator.sample_instance(2), 1.5)
        arrivals = np.array([r.arrival_time for r in trace])
        # compress to create contention
        arrivals = arrivals / 50.0
        execs = np.array([r.exec_time for r in trace])
        cfg = WLMConfig()
        oracle = simulate_wlm(arrivals, execs, execs, cfg)
        constant = simulate_wlm(arrivals, execs, np.ones_like(execs), cfg)
        assert oracle.mean_latency <= constant.mean_latency * 1.05

    def test_optimal_predictor_protocol(self, generator):
        trace = generator.generate_trace(generator.sample_instance(3), 1.0)
        optimal = OptimalPredictor()
        for r in list(trace)[:20]:
            p = optimal.predict(r)
            assert p.exec_time == r.exec_time
            assert p.source == PredictionSource.OPTIMAL
            optimal.observe(r)

    def test_cache_hit_rate_tracks_repetition(self, generator):
        """Across instances, cache hit rate should correlate with the
        trace's repeated fraction (Fig 1a -> cache effectiveness)."""
        hit_rates, repeat_fracs = [], []
        for i in range(6):
            trace = generator.generate_trace(generator.sample_instance(i), 1.5)
            if len(trace) < 100:
                continue
            stage = StagePredictor(trace.instance, config=fast_profile())
            for r in trace:
                stage.predict(r)
                stage.observe(r)
            hit_rates.append(stage.cache.hit_rate)
            repeat_fracs.append(trace.repeated_fraction())
        assert len(hit_rates) >= 3
        order_hits = np.argsort(hit_rates)
        order_repeats = np.argsort(repeat_fracs)
        # same instance has the max of both
        assert order_hits[-1] == order_repeats[-1]

    def test_config_is_immutable(self):
        cfg = fast_profile()
        with pytest.raises(dataclasses.FrozenInstanceError):
            cfg.short_circuit_seconds = 1.0
