"""Tests for the sharded multi-process fleet gateway.

The headline contract is fleet-level bit-parity: for every registered
scenario, ``FleetSweeper`` direct, ``via_service`` and ``via_gateway``
replays produce identical arrays and cache/counter accounting for any
shard count and client count — shard assignment, process boundaries,
queue bounds and client interleaving are all invisible.  On top of that,
shard routing (golden values + cross-process stability), permutation
invariance of whole-fleet replays, fleet metrics aggregation and the
whole-fleet snapshot/restore path (same-process, re-sharded and
fresh-spawn-process) are covered individually.  Crash/backpressure
semantics live in ``tests/test_gateway_faults.py``.
"""

import multiprocessing
import pickle
import time
from concurrent.futures import ProcessPoolExecutor

import pytest

# shared parity helpers live with the service suite (one definition)
from test_service import assert_replays_identical

from repro.core.config import GatewayConfig, ServiceConfig, fast_profile
from repro.harness import FleetSweeper
from repro.parallelism import pool_map
from repro.scenarios import registered_scenarios
from repro.service import FleetGateway, ModelRegistry, shard_for
from repro.workload import FleetConfig, FleetGenerator

SEED = 3
VOLUME = 0.1
DURATION = 0.7
N_INSTANCES = 3

FLEET = FleetConfig(seed=SEED, volume_scale=VOLUME)


def make_sweeper(**kwargs):
    return FleetSweeper(
        fleet_config=kwargs.pop("fleet_config", FLEET),
        stage_config=fast_profile(),
        random_state=0,
        **kwargs,
    )


@pytest.fixture(scope="module")
def traces():
    gen = FleetGenerator(FLEET)
    return [gen.generate_trace(gen.sample_instance(i), DURATION) for i in range(N_INSTANCES)]


@pytest.fixture(scope="module")
def direct_replays(traces):
    return make_sweeper().replay_traces(traces)


@pytest.fixture(scope="module")
def via_service_replays(traces):
    return make_sweeper(via_service=True, service_clients=2).replay_traces(traces)


# ---------------------------------------------------------------------------
# shard routing: pure, stable, cross-process
# ---------------------------------------------------------------------------
def _shard_worker(args):
    """Module-level so it pickles by reference under any start method."""
    instance_id, n_shards = args
    return shard_for(instance_id, n_shards)


class TestShardRouting:
    def test_golden_values(self):
        """The map is part of the snapshot format: restoring a fleet
        relies on every process computing the same assignment, so pin
        concrete values (a salted/processwise hash would break these)."""
        golden = {
            ("inst-0000", 2): 1,
            ("inst-0001", 2): 0,
            ("inst-0002", 2): 1,
            ("inst-0000", 3): 2,
            ("inst-0001", 3): 0,
            ("inst-0003", 3): 1,
            ("prod-eu-7781", 4): 2,
            ("prod-eu-7781", 8): 6,
        }
        for (instance_id, n_shards), want in golden.items():
            assert shard_for(instance_id, n_shards) == want

    def test_stable_across_processes(self):
        tasks = [
            (f"inst-{i:04d}", n_shards) for i in range(12) for n_shards in (1, 2, 3, 5)
        ]
        want = [_shard_worker(task) for task in tasks]
        got = pool_map(_shard_worker, tasks, n_jobs=2)
        assert got == want

    def test_rejects_bad_shard_count(self):
        with pytest.raises(ValueError, match="n_shards"):
            shard_for("inst-0000", 0)


# ---------------------------------------------------------------------------
# fleet bit-parity: direct vs via_service vs via_gateway
# ---------------------------------------------------------------------------
class TestGatewayParity:
    @pytest.mark.parametrize(
        "n_shards,service_clients", [(1, 1), (2, 2), (3, 3), (2, 4)]
    )
    def test_bit_identical_for_any_shards_and_clients(
        self, traces, direct_replays, via_service_replays, n_shards, service_clients
    ):
        via_gateway = make_sweeper(
            via_gateway=True,
            gateway_config=GatewayConfig(n_shards=n_shards),
            service_config=ServiceConfig(max_batch_size=7),
            service_clients=service_clients,
        ).replay_traces(traces)
        for direct, via_svc, via_gw in zip(direct_replays, via_service_replays, via_gateway):
            assert_replays_identical(direct, via_gw)
            assert_replays_identical(via_svc, via_gw)

    def test_concurrent_instance_submitters_bit_identical(self, traces, direct_replays):
        """n_jobs > 1 replays several instances' streams through the
        gateway at once (thread submitters over the shard processes);
        per-instance sequencing keeps it bit-identical."""
        via = make_sweeper(
            via_gateway=True,
            gateway_config=GatewayConfig(n_shards=2),
            service_clients=2,
            n_jobs=3,
        ).replay_traces(traces)
        for direct, replay in zip(direct_replays, via):
            assert_replays_identical(direct, replay)

    def test_replay_indices_matches_replay_traces(self, traces, direct_replays):
        via = make_sweeper(
            via_gateway=True, gateway_config=GatewayConfig(n_shards=2)
        ).replay_indices(range(N_INSTANCES), DURATION)
        for direct, replay in zip(direct_replays, via):
            assert_replays_identical(direct, replay)

    def test_permutation_of_instances_is_invisible(self, traces, direct_replays):
        """Feeding the fleet through the gateway in any instance order
        yields the same per-instance arrays (per-instance op streams are
        independent; shard assignment ignores arrival order)."""
        order = [2, 0, 1]
        permuted = make_sweeper(
            via_gateway=True, gateway_config=GatewayConfig(n_shards=2)
        ).replay_traces([traces[i] for i in order])
        for position, replay in zip(order, permuted):
            assert_replays_identical(direct_replays[position], replay)

    def test_via_gateway_excludes_via_service(self, traces):
        with pytest.raises(ValueError, match="mutually exclusive"):
            make_sweeper(via_gateway=True, via_service=True).replay_traces(traces)

    def test_via_gateway_rejects_per_query_mode(self, traces):
        with pytest.raises(ValueError, match="batched"):
            make_sweeper(
                via_gateway=True, component_inference="per_query"
            ).replay_traces(traces)


# every registered scenario must replay through the gateway
# bit-identically; shard and client counts rotate through {1,2,3} so the
# whole grid is exercised across the matrix without re-running every
# scenario at every point
_SCENARIO_GRID = [
    pytest.param(scenario, (i % 3) + 1, (i % 2) + 1, id=scenario.name)
    for i, scenario in enumerate(registered_scenarios())
]


class TestScenarioGatewayParity:
    @pytest.mark.parametrize("scenario,n_shards,service_clients", _SCENARIO_GRID)
    def test_scenario_bit_identical_via_gateway(self, scenario, n_shards, service_clients):
        fleet = FleetConfig(seed=5, volume_scale=VOLUME, scenario=scenario.config)
        direct = make_sweeper(fleet_config=fleet).replay_indices(range(2), 1.0)
        via = make_sweeper(
            fleet_config=fleet,
            via_gateway=True,
            gateway_config=GatewayConfig(n_shards=n_shards),
            service_clients=service_clients,
        ).replay_indices(range(2), 1.0)
        for a, b in zip(direct, via):
            assert_replays_identical(a, b)


# ---------------------------------------------------------------------------
# the live client API and fleet metrics
# ---------------------------------------------------------------------------
class TestGatewayService:
    def test_register_and_predict_roundtrip(self, traces):
        with FleetGateway(GatewayConfig(n_shards=2), stage_config=fast_profile()) as gateway:
            trace = traces[0]
            shard = gateway.register_instance(trace.instance)
            assert shard == shard_for(trace.instance.instance_id, 2)
            assert gateway.instance_ids == (trace.instance.instance_id,)
            prediction = gateway.predict(trace.instance.instance_id, trace[0], timeout=60)
            assert prediction.exec_time >= 0.0

    def test_duplicate_registration_rejected(self, traces):
        with FleetGateway(GatewayConfig(n_shards=2), stage_config=fast_profile()) as gateway:
            gateway.register_instance(traces[0].instance)
            with pytest.raises(ValueError, match="already registered"):
                gateway.register_instance(traces[0].instance)

    def test_unknown_instance_rejected(self, traces):
        with FleetGateway(GatewayConfig(n_shards=2), stage_config=fast_profile()) as gateway:
            with pytest.raises(KeyError, match="not registered"):
                gateway.predict_async("no-such-instance", traces[0][0])

    def test_bad_config_rejected(self):
        # validation lives on GatewayConfig itself, so a bad config dies
        # at construction — before any shard process could be spawned
        with pytest.raises(ValueError, match="n_shards"):
            GatewayConfig(n_shards=0)
        with pytest.raises(ValueError, match="n_shards"):
            GatewayConfig(n_shards=-2)
        with pytest.raises(ValueError, match="queue_size"):
            GatewayConfig(queue_size=0)
        with pytest.raises(ValueError, match="enqueue_timeout_s"):
            GatewayConfig(enqueue_timeout_s=0.0)
        with pytest.raises(ValueError, match="drain_timeout_s"):
            GatewayConfig(drain_timeout_s=-1.0)

    def test_idle_close_returns_promptly(self, traces):
        """Closing an idle fleet must not wait out any poll interval.

        Regression test for the listener busy-wait: ``_listen`` used to
        poll ``response_q.get(timeout=0.2)``, quantizing close latency
        to the poll period (and spinning 5x/s per shard while idle).
        With the blocking get + sentinel wakeup, an idle two-shard
        fleet's shutdown handshake completes in milliseconds.
        """
        gateway = FleetGateway(GatewayConfig(n_shards=2), stage_config=fast_profile())
        gateway.register_instance(traces[0].instance)
        gateway.predict(traces[0].instance.instance_id, traces[0][0], timeout=60)
        t0 = time.monotonic()
        gateway.close()
        assert time.monotonic() - t0 < 1.0

    def test_fleet_metrics_aggregate_across_shards(self, traces):
        with FleetGateway(GatewayConfig(n_shards=2), stage_config=fast_profile()) as gateway:
            n_ops = 0
            for trace in traces:
                gateway.register_instance(trace.instance)
            for trace in traces:
                instance_id = trace.instance.instance_id
                for i in range(min(len(trace), 15)):
                    gateway.predict_async(instance_id, trace[i])
                    gateway.observe(instance_id, trace[i])
                    n_ops += 1
            gateway.drain()
            stats = gateway.stats()
        assert stats["n_shards"] == 2
        assert stats["n_instances"] == N_INSTANCES
        assert stats["fleet"]["n_predicts"] == n_ops
        assert stats["fleet"]["n_observes"] == n_ops
        assert stats["fleet"]["cache_hits"] + stats["fleet"]["cache_misses"] == n_ops
        assert len(stats["instances"]) == N_INSTANCES
        # the per-shard rows cover every shard and agree on instance count
        assert [row["shard"] for row in stats["shards"]] == [0, 1]
        assert sum(row["n_instances"] for row in stats["shards"]) == N_INSTANCES
        # per-instance accounting sums to the fleet roll-up
        per_instance = stats["instances"].values()
        assert stats["fleet"]["n_predicts"] == sum(
            s["scheduler"]["n_predicts"] for s in per_instance
        )
        assert stats["fleet"]["byte_size"] == sum(s["stage"]["byte_size"] for s in per_instance)


# ---------------------------------------------------------------------------
# whole-fleet snapshot/restore
# ---------------------------------------------------------------------------
def _warm_gateway(traces, n_shards, n_warm_fraction=0.5):
    gateway = FleetGateway(
        GatewayConfig(n_shards=n_shards, service=ServiceConfig(max_batch_size=8)),
        stage_config=fast_profile(),
        random_state=0,
    )
    for trace in traces:
        gateway.register_instance(trace.instance)
    for trace in traces:
        instance_id = trace.instance.instance_id
        for i in range(int(len(trace) * n_warm_fraction)):
            gateway.predict_async(instance_id, trace[i])
            gateway.observe(instance_id, trace[i])
    gateway.drain()
    return gateway


def _held_out_fleet_predictions(gateway, traces, n_warm_fraction=0.5):
    """Fused predict+observe over every instance's held-out segment
    (observes included so post-restore retrains are exercised too)."""
    futures = {}
    for trace in traces:
        instance_id = trace.instance.instance_id
        futures[instance_id] = []
        for i in range(int(len(trace) * n_warm_fraction), len(trace)):
            futures[instance_id].append(gateway.predict_async(instance_id, trace[i]))
            gateway.observe(instance_id, trace[i])
    gateway.drain()
    return {
        instance_id: [f.result(timeout=60).prediction for f in fs]
        for instance_id, fs in futures.items()
    }


def _restore_fleet_and_predict(args):
    """Spawn-able worker: restore a whole fleet cold and serve it."""
    registry_root, name, n_shards, fleet_config, duration = args
    gen = FleetGenerator(fleet_config)
    traces = [gen.generate_trace(gen.sample_instance(i), duration) for i in range(N_INSTANCES)]
    registry = ModelRegistry(registry_root)
    gateway = FleetGateway.restore(registry, name, config=GatewayConfig(n_shards=n_shards))
    try:
        predictions = _held_out_fleet_predictions(gateway, traces)
        stats = {
            instance_id: s["stage"] for instance_id, s in gateway.stats()["instances"].items()
        }
    finally:
        gateway.close()
    return pickle.dumps((predictions, stats))


class TestFleetSnapshot:
    def test_snapshot_restore_resharded_same_process(self, traces, tmp_path):
        """Warm restart is bit-for-bit even under a different shard
        count — shard assignment is not part of the fleet's state."""
        registry = ModelRegistry(str(tmp_path))
        gateway = _warm_gateway(traces, n_shards=2)
        gateway.snapshot(registry, "warm")
        want = _held_out_fleet_predictions(gateway, traces)
        want_stats = {i: s["stage"] for i, s in gateway.stats()["instances"].items()}
        gateway.close()

        manifest = registry.load_fleet_manifest("warm")
        assert manifest["instances"] == sorted(t.instance.instance_id for t in traces)
        assert manifest["n_shards"] == 2
        assert not manifest["has_global_model"]
        assert registry.list_fleet_snapshots() == ["warm"]

        restored = FleetGateway.restore(registry, "warm", config=GatewayConfig(n_shards=3))
        got = _held_out_fleet_predictions(restored, traces)
        got_stats = {i: s["stage"] for i, s in restored.stats()["instances"].items()}
        restored.close()
        assert got == want
        assert got_stats == want_stats

    def test_snapshot_restore_fresh_spawn_process(self, traces, tmp_path):
        """The PR 3 fresh-process pattern, extended to the multi-shard
        manifest: a brand-new interpreter restores the whole fleet and
        reproduces predictions and retrain behavior bit-for-bit."""
        registry = ModelRegistry(str(tmp_path))
        gateway = _warm_gateway(traces, n_shards=2)
        gateway.snapshot(registry, "warm")
        want = _held_out_fleet_predictions(gateway, traces)
        want_stats = {i: s["stage"] for i, s in gateway.stats()["instances"].items()}
        gateway.close()

        with ProcessPoolExecutor(
            max_workers=1, mp_context=multiprocessing.get_context("spawn")
        ) as pool:
            payload = pool.submit(
                _restore_fleet_and_predict, (str(tmp_path), "warm", 3, FLEET, DURATION)
            ).result(timeout=600)
        got, got_stats = pickle.loads(payload)
        assert got == want
        assert got_stats == want_stats

    def test_manifest_missing_member_rejected(self, traces, tmp_path):
        registry = ModelRegistry(str(tmp_path))
        with pytest.raises(ValueError, match="missing member state"):
            registry.save_fleet_manifest("broken", ["inst-9999"], n_shards=1)

    def test_unsupported_fleet_version_rejected(self, traces, tmp_path):
        import json
        import os

        registry = ModelRegistry(str(tmp_path))
        gateway = _warm_gateway(traces[:1], n_shards=1)
        gateway.snapshot(registry, "v-test")
        gateway.close()
        manifest_path = os.path.join(registry.fleet_snapshot_path("v-test"), "fleet.json")
        manifest = json.load(open(manifest_path))
        manifest["format_version"] = 999
        json.dump(manifest, open(manifest_path, "w"))
        with pytest.raises(ValueError, match="version"):
            registry.load_fleet_manifest("v-test")


# ---------------------------------------------------------------------------
# gateway bench plumbing (scaled down; the real run is the CLI's)
# ---------------------------------------------------------------------------
class TestGatewayBenchSmoke:
    def test_bench_reports_grid_and_parity(self):
        from repro.service import GatewayBenchConfig, run_gateway_bench

        result = run_gateway_bench(
            GatewayBenchConfig(
                n_instances=2,
                duration_days=0.5,
                volume_scale=VOLUME,
                shard_counts=(1, 2),
                client_counts=(2,),
                stage=fast_profile(),
            )
        )
        assert len(result.rows) == 2
        assert result.predictions_identical
        report = result.render()
        assert "shards=1" in report and "shards=2" in report
        assert "bit-identical" in report
