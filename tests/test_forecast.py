"""Workload forecasting: determinism, pre-warm, troughs, parity.

The forecaster's contract has two halves.  *Mechanism*: arrival-rate
and template-mix forecasts are exact functions of the observed
``(arrival_time, cache_key)`` stream — seasonal folding, coverage
normalization, the per-template periodicity ("due") model behind
hot-key pre-warming, trough detection, and the bounded retrain
deferral.  *Determinism*: every forecast-driven decision rides each
instance's sequenced op stream, so forecast-on replays are
bit-identical across ``n_jobs``, instance-order permutations, and
every serving tier (direct / service / gateway / socket) — this file
runs inside CI's fork/spawn ``parallel-parity`` job to pin that across
multiprocessing start methods too.
"""

import pickle
from dataclasses import replace

import numpy as np
import pytest

# shared parity helper lives with the service suite (one definition)
from test_service import assert_replays_identical

from repro.core.config import (
    CacheConfig,
    ForecastConfig,
    GatewayConfig,
    LocalModelConfig,
    ReplayBackend,
    ServiceConfig,
    StageConfig,
    fast_profile,
)
from repro.core.stage import StagePredictor
from repro.forecast import WorkloadForecast
from repro.harness import FleetSweeper
from repro.service import PredictionService
from repro.workload import FleetConfig, FleetGenerator
from repro.workload.seeding import derive_seed

SEED = 7
VOLUME = 0.12
DURATION = 1.0
N_INSTANCES = 3

FLEET = FleetConfig(seed=SEED, volume_scale=VOLUME)

#: one forecast bin, in seconds, at the default 30-minute bucket
BIN_S = 1800.0


def forecast_profile(**forecast_overrides) -> StageConfig:
    """The forecast-on test profile: a small cache (so pre-warming has
    eviction pressure to push against) over the fast profile."""
    return replace(
        fast_profile(),
        cache=CacheConfig(capacity=32),
        forecast=ForecastConfig(**forecast_overrides),
    )


def deferral_profile(**forecast_overrides) -> StageConfig:
    """Forecast profile whose local model actually retrains at this
    workload's scale: the dedup rule admits only cache misses to the
    pool, and the test traces are repetition-heavy (a couple dozen
    misses per instance), so the fast profile's 30+150 thresholds would
    never fire a warm retrain here."""
    forecast_overrides.setdefault("defer_retrains", True)
    return replace(
        forecast_profile(**forecast_overrides),
        local=LocalModelConfig(
            n_members=2,
            n_estimators=10,
            max_depth=2,
            min_train_size=8,
            retrain_interval=4,
        ),
    )


def make_sweeper(stage_config, **kwargs):
    return FleetSweeper(
        fleet_config=kwargs.pop("fleet_config", FLEET),
        stage_config=stage_config,
        random_state=0,
        **kwargs,
    )


@pytest.fixture(scope="module")
def traces():
    gen = FleetGenerator(FLEET)
    return [
        gen.generate_trace(gen.sample_instance(i), DURATION) for i in range(N_INSTANCES)
    ]


@pytest.fixture(scope="module")
def forecast_replays(traces):
    """The reference forecast-on replays (sequential, direct tier)."""
    return make_sweeper(forecast_profile()).replay_traces(traces)


# ---------------------------------------------------------------------------
# forecaster mechanism
# ---------------------------------------------------------------------------
class TestArrivalRateForecaster:
    def test_bin_geometry(self):
        forecast = WorkloadForecast(ForecastConfig())
        assert forecast.n_bins == 48  # 24h / 30min
        assert forecast.bin_seconds == BIN_S
        assert forecast.bin_index(BIN_S * 3 + 1.0) == 3
        assert forecast.phase_of(BIN_S * 50) == 2  # folds onto the cycle

    def test_expected_count_uses_exact_coverage(self):
        """A phase seen on every covered day forecasts its per-day mean;
        half-covered cycles must not dilute it."""
        forecast = WorkloadForecast(ForecastConfig())
        # phase 0 gets 2 arrivals on day 0 and 4 on day 1
        for day, n in ((0, 2), (1, 4)):
            for i in range(n):
                forecast.observe(day * 86_400.0 + i)
        # span covers phase 0 twice (both days), phase 1 once
        assert forecast.expected_rate(0.0) == pytest.approx(3.0)
        assert forecast.arrivals.coverage(0) == 2

    def test_trough_detection(self):
        """A flat-vs-quiet cycle: the quiet phase is a trough, the busy
        one is not, and a cold forecaster never reports troughs."""
        config = ForecastConfig(min_history=10, trough_fraction=0.5)
        forecast = WorkloadForecast(config)
        assert not forecast.is_trough(0.0)  # cold
        # bins 0..23 busy (10 arrivals each), bins 24..47 near-silent
        for b in range(48):
            n = 10 if b < 24 else 1
            for i in range(n):
                forecast.observe(b * BIN_S + i)
        assert forecast.warm
        assert not forecast.is_trough(0.0)
        assert forecast.is_trough(30 * BIN_S)

    def test_next_trough_lands_on_a_quiet_bin(self):
        config = ForecastConfig(min_history=10, trough_fraction=0.5)
        forecast = WorkloadForecast(config)
        for b in range(48):
            for i in range(10 if b < 24 else 1):
                forecast.observe(b * BIN_S + i)
        start = forecast.next_trough(0.0)
        assert start is not None
        assert forecast.is_trough(start)
        assert start > 0.0
        assert forecast.next_trough(0.0, search_bins=1) is None  # bin 1 is busy

    def test_forecast_load_cold_is_zero(self):
        forecast = WorkloadForecast(ForecastConfig(min_history=100))
        forecast.observe(0.0)
        assert forecast.forecast_load() == 0.0


class TestDueModel:
    """The per-template periodicity model behind hot-key pre-warming."""

    def observe_every(self, forecast, key, period_s, until_s, start_s=0.0):
        t = start_s
        while t < until_s:
            forecast.observe(t, key)
            t += period_s

    def test_periodic_key_is_due_next_bin(self):
        forecast = WorkloadForecast(ForecastConfig())
        self.observe_every(forecast, "dash", 600.0, 4 * BIN_S)
        assert "dash" in forecast.hot_keys(4 * BIN_S)

    def test_one_shot_keys_never_qualify(self):
        forecast = WorkloadForecast(ForecastConfig())
        forecast.observe(10.0, "adhoc")
        self.observe_every(forecast, "dash", 600.0, 2 * BIN_S)
        assert forecast.hot_keys(2 * BIN_S) == ["dash"]

    def test_retired_keys_age_out(self):
        """A key idle far beyond its mean gap stops forecasting — a
        rotated dashboard variant must not be pre-warmed forever."""
        forecast = WorkloadForecast(ForecastConfig())
        self.observe_every(forecast, "old", 600.0, BIN_S)
        # alive window is 4 * gap + one bin ~= 4200s past last arrival
        assert "old" in forecast.hot_keys(BIN_S)
        assert "old" not in forecast.hot_keys(4 * BIN_S)

    def test_slow_periodic_key_waits_for_its_bin(self):
        """A 3-hour-periodic key is hot only when its arrival is within
        the due lookahead — not in every intervening bin."""
        forecast = WorkloadForecast(ForecastConfig())
        self.observe_every(forecast, "hourly3", 6 * BIN_S, 24 * BIN_S + 1)
        # last arrival at t=24 bins; next expected at t=30 bins
        assert "hourly3" not in forecast.hot_keys(26 * BIN_S)
        assert "hourly3" in forecast.hot_keys(29 * BIN_S)

    def test_soonest_due_first_with_key_tiebreak(self):
        forecast = WorkloadForecast(ForecastConfig())
        self.observe_every(forecast, "b", 500.0, 2 * BIN_S)
        self.observe_every(forecast, "a", 500.0, 2 * BIN_S)
        self.observe_every(forecast, "late", 2000.0, 2 * BIN_S)
        hot = forecast.hot_keys(2 * BIN_S)
        # a and b are both overdue (clamped to the bin start): key order;
        # late's next arrival is genuinely later
        assert hot == ["a", "b", "late"]

    def test_top_templates_budget(self):
        forecast = WorkloadForecast(ForecastConfig(top_templates=2))
        for i in range(8):
            self.observe_every(forecast, f"k{i}", 600.0, 2 * BIN_S)
        assert len(forecast.hot_keys(2 * BIN_S)) == 2

    def test_prune_bounds_tracked_keys(self):
        config = ForecastConfig(max_keys_tracked=16)
        forecast = WorkloadForecast(config)
        for i in range(100):
            forecast.observe(float(i), f"k{i}")
        assert len(forecast.mix.key_stats) <= 16
        # recurring keys survive the prune over one-shot churn
        recurring = WorkloadForecast(config)
        for i in range(100):
            recurring.observe(float(i), "keeper" if i % 2 else f"churn{i}")
        assert "keeper" in recurring.mix.key_stats


class TestOfflineFit:
    def test_fit_matches_online_observes(self):
        events = [(i * 100.0, f"k{i % 5}") for i in range(200)]
        online = WorkloadForecast(ForecastConfig(), seed=3)
        for t, key in events:
            online.observe(t, key)
        fitted = WorkloadForecast(ForecastConfig(), seed=3).fit(events)
        assert pickle.dumps(online) == pickle.dumps(fitted)

    def test_oversized_fit_subsamples_deterministically(self):
        events = [(i * 10.0, f"k{i % 7}") for i in range(500)]
        config = ForecastConfig(max_fit_events=100)
        a = WorkloadForecast(config, seed=5).fit(events)
        b = WorkloadForecast(config, seed=5).fit(events)
        assert a.n_observed == b.n_observed == 100
        assert pickle.dumps(a) == pickle.dumps(b)
        # a different seed keeps a different subsample
        c = WorkloadForecast(config, seed=6).fit(events)
        assert pickle.dumps(a) != pickle.dumps(c)

    def test_fit_trace_keys_like_the_cache(self, traces):
        forecast = WorkloadForecast(ForecastConfig(), seed=1).fit_trace(traces[0])
        assert forecast.n_observed == len(traces[0])
        assert forecast.mix.key_stats  # real keys tracked


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"bucket_minutes": 0},
            {"period_days": -1},
            {"top_templates": -1},
            {"min_key_count": 0},
            {"due_lookahead_bins": 0},
            {"alive_gap_multiple": 0.0},
            {"archive_capacity": -1},
            {"trough_fraction": 1.5},
            {"max_retrain_defer_bins": 0},
            {"min_history": -1},
            {"horizon_bins": 0},
            {"max_fit_events": 0},
        ],
    )
    def test_bad_knobs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ForecastConfig(**kwargs)


# ---------------------------------------------------------------------------
# determinism: the heart of satellite 4 (also runs under fork + spawn in
# CI's parallel-parity job)
# ---------------------------------------------------------------------------
class TestForecastDeterminism:
    def test_same_prefix_bit_identical_forecasts(self, traces):
        """Two forecasters fed the same trace prefix agree on every
        byte of state — and therefore on every forecast they emit."""
        seed = derive_seed(traces[0].instance.seed, "forecast")
        a = WorkloadForecast(ForecastConfig(), seed=seed).fit_trace(traces[0])
        b = WorkloadForecast(ForecastConfig(), seed=seed).fit_trace(traces[0])
        assert pickle.dumps(a) == pickle.dumps(b)
        t = traces[0][-1].arrival_time
        assert a.hot_keys(t) == b.hot_keys(t)
        assert a.forecast_load() == b.forecast_load()

    def test_forecast_on_replay_is_reproducible(self, traces, forecast_replays):
        again = make_sweeper(forecast_profile()).replay_traces(traces)
        for a, b in zip(forecast_replays, again):
            assert_replays_identical(a, b)

    def test_forecast_stats_present_and_live(self, forecast_replays):
        """The forecast keys ride stage_stats on every replay; with the
        forecaster on, pre-warming actually acted on this workload.
        (``forecast_load`` can legitimately be 0.0 per instance — a
        nightly-ETL-only workload forecasts nothing for the bins right
        after its last arrival — but the fleet must report signal.)"""
        total_acts, total_load = 0, 0.0
        for replay in forecast_replays:
            stats = replay.stage_stats
            for key in (
                "forecast_load",
                "n_prewarm_touches",
                "n_prewarm_restores",
                "n_retrain_deferrals",
                "n_trough_retrains",
            ):
                assert key in stats
            assert stats["forecast_load"] >= 0.0
            total_load += stats["forecast_load"]
            total_acts += stats["n_prewarm_touches"] + stats["n_prewarm_restores"]
        assert total_load > 0.0
        assert total_acts > 0

    def test_forecast_off_reports_zeros(self, traces):
        replay = make_sweeper(fast_profile()).replay_traces(traces[:1])[0]
        assert replay.stage_stats["forecast_load"] == 0.0
        assert replay.stage_stats["n_prewarm_touches"] == 0
        assert replay.stage_stats["n_prewarm_restores"] == 0

    def test_parallel_jobs_bit_identical(self, traces, forecast_replays):
        parallel = make_sweeper(forecast_profile(), n_jobs=2).replay_traces(traces)
        for a, b in zip(forecast_replays, parallel):
            assert_replays_identical(a, b)

    def test_instance_order_permutation_bit_identical(self, forecast_replays):
        sweeper = make_sweeper(forecast_profile(), n_jobs=2)
        permuted = sweeper.replay_indices([2, 0, 1], DURATION)
        by_id = {r.instance_id: r for r in permuted}
        for reference in forecast_replays:
            assert_replays_identical(reference, by_id[reference.instance_id])


class TestBackendParity:
    """Forecast-on replays are tier-invariant: the pre-warm, deferral
    and forecast accounting land at identical op-stream positions
    whether ops arrive directly, through the micro-batching service, a
    sharded gateway, or real TCP connections."""

    @pytest.mark.parametrize(
        "backend",
        [
            pytest.param(ReplayBackend(mode="service", clients=2), id="service"),
            pytest.param(
                ReplayBackend(
                    mode="gateway", clients=2, gateway=GatewayConfig(n_shards=2)
                ),
                id="gateway",
            ),
            pytest.param(
                ReplayBackend(
                    mode="socket", clients=2, gateway=GatewayConfig(n_shards=2)
                ),
                id="socket",
            ),
        ],
    )
    def test_tier_matches_direct(self, traces, forecast_replays, backend):
        via = make_sweeper(forecast_profile(), backend=backend).replay_traces(traces)
        for direct, replay in zip(forecast_replays, via):
            assert_replays_identical(direct, replay)


# ---------------------------------------------------------------------------
# trough-scheduled retrains
# ---------------------------------------------------------------------------
class TestRetrainDeferral:
    def test_deferral_accounting(self, traces):
        """With deferral on, warm retrains wait (deferral counter moves)
        and eventually run (trough or bound) — never silently dropped."""
        replays = make_sweeper(deferral_profile()).replay_traces(traces)
        stats = [r.stage_stats for r in replays]
        assert sum(s["n_local_retrains"] for s in stats) > 0
        moved = sum(s["n_retrain_deferrals"] + s["n_trough_retrains"] for s in stats)
        assert moved > 0
        for s in stats:
            # every released trough retrain is also in the retrain total
            assert s["n_trough_retrains"] <= s["n_local_retrains"]

    def test_deferral_bound_is_respected(self, traces):
        """A stage whose forecast never finds a trough still retrains
        within ``max_retrain_defer_bins`` of becoming due."""
        config = deferral_profile(
            trough_fraction=0.0,  # nothing ever counts as a trough
            max_retrain_defer_bins=2,
            min_history=1,
        )
        stage = StagePredictor(traces[0].instance, config=config, random_state=0)
        for record in traces[0]:
            stage.observe(record)
        assert stage.local.n_retrains > 1  # warm retrains did run
        assert stage.n_trough_retrains > 0  # released by the bound
        assert stage.n_retrain_deferrals > 0  # after having been held

    def test_service_knob_matches_config_spelling(self, traces):
        """``ServiceConfig.defer_retrains_to_troughs`` is bit-identical
        to spelling the deferral on the stage config directly."""
        trace = traces[0]
        via_knob = make_sweeper(
            deferral_profile(defer_retrains=False),
            backend=ReplayBackend(
                mode="service",
                service=ServiceConfig(defer_retrains_to_troughs=True),
            ),
        ).replay_traces([trace])[0]
        via_config = make_sweeper(
            deferral_profile(),
            backend=ReplayBackend(mode="service"),
        ).replay_traces([trace])[0]
        assert via_knob.stage_stats == via_config.stage_stats
        assert np.array_equal(via_knob.stage_pred, via_config.stage_pred)

    def test_service_knob_requires_forecast(self, traces):
        with pytest.raises(ValueError, match="forecast"):
            PredictionService(
                traces[0].instance,
                stage_config=fast_profile(),
                service_config=ServiceConfig(defer_retrains_to_troughs=True),
            )


# ---------------------------------------------------------------------------
# the maintenance-window recommendation
# ---------------------------------------------------------------------------
class TestMaintenanceWindow:
    def test_cold_service_recommends_nothing(self, traces):
        with PredictionService(
            traces[0].instance, stage_config=forecast_profile()
        ) as service:
            assert service.maintenance_window() is None

    def test_forecast_off_recommends_nothing(self, traces):
        with PredictionService(
            traces[0].instance, stage_config=fast_profile()
        ) as service:
            assert service.maintenance_window() is None

    def test_window_lands_in_a_trough(self, traces):
        trace = traces[0]
        with PredictionService(
            trace.instance,
            stage_config=forecast_profile(min_history=1),
        ) as service:
            for i, record in enumerate(trace):
                service.observe(record)
                if i % 200 == 0:
                    service.drain()
            service.drain()
            window = service.maintenance_window()
            stage = service.stage
        if window is not None:
            assert window["bin_seconds"] == BIN_S
            assert stage.forecast.is_trough(window["start_s"])
            assert window["start_s"] > trace[-1].arrival_time - BIN_S
